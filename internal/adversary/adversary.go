// Package adversary implements the paper's adversarial scheduler
// (Algorithm 1): given any deterministic algorithm 𝓑 implementing a
// broadcast abstraction B in the model CAMP_{k+1}[k-SA], it constructs the
// execution α_{k,N,B,𝓑} of Definition 4, in which every process B-delivers
// N of its own messages before any message of any other process.
//
// The package also provides:
//
//   - the β projection (broadcast events of α) and the γ_i per-process
//     restrictions of Definition 4;
//   - the N-solo checker of Definition 5;
//   - Verify, a mechanical re-proof of Lemmas 1-8 on the produced trace
//     (the execution is admitted by CAMP_{k+1}[k-SA]) and of Lemma 10's
//     conclusion (β is N-solo).
//
// The scheduler is transcribed line by line; comments reference the line
// numbers of Algorithm 1 in the paper.
package adversary

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// Synch is the content of every message broadcast by the adversary, as in
// the paper (processes repeatedly sync-broadcast SYNCH).
const Synch model.Payload = "SYNCH"

// Options configures a run of the adversarial scheduler.
type Options struct {
	// K is the agreement degree; the system has K+1 processes. K > 1, as
	// in Section 4.2.
	K int
	// N is the number of solo self-deliveries to force per process. N > 0.
	N int
	// NewAutomaton builds the candidate implementation 𝓑 for one process.
	NewAutomaton func(id model.ProcID) sched.Automaton
	// MaxStepsPerPhase bounds each phase of the while loop (line 5). If a
	// phase exceeds it, 𝓑 makes no solo progress — a witness for the
	// Lemma 7 contradiction — and Run returns ErrNotSoloProgressing.
	// Zero selects the default (100000).
	MaxStepsPerPhase int
	// Obs receives Algorithm 1 line-level progress: per-phase spans and
	// step histograms, solo-delivery watermarks (local_del), reset and
	// adoption counters, and structured phase/reset/adoption events. It
	// is also threaded into the underlying sched runtime. Nil disables
	// all recording.
	Obs *obs.Registry
}

func (o Options) maxSteps() int {
	if o.MaxStepsPerPhase <= 0 {
		return 100000
	}
	return o.MaxStepsPerPhase
}

// ErrNotSoloProgressing reports that the candidate implementation stalled:
// some process, running solo, could not B-deliver N of its own messages.
// By Lemma 7 this cannot happen to a correct implementation — the stall is
// itself a correctness counterexample (the solo execution γ_i would then
// be an admissible execution in which BC-Global-CS-Termination or
// BC-Local-Termination fails).
type ErrNotSoloProgressing struct {
	Proc  model.ProcID
	Phase int
	Steps int
}

func (e *ErrNotSoloProgressing) Error() string {
	return fmt.Sprintf("adversary: %v stalled in phase %d after %d steps: the implementation makes no solo progress (Lemma 7 witness)", e.Proc, e.Phase, e.Steps)
}

// Result is the outcome of the adversarial construction.
type Result struct {
	// K and N echo the options.
	K, N int
	// Alpha is the execution α_{k,N,B,𝓑} (an execution prefix:
	// Complete=false, liveness is not claimed).
	Alpha *trace.Trace
	// Beta is the broadcast projection β of Definition 4.
	Beta *trace.Trace
	// Counted maps each process to its N counted messages — the messages
	// whose self-delivery advanced local_del from 0 to N without a reset
	// (the grey boxes of Figure 1). These are the witness messages of the
	// N-solo property.
	Counted map[model.ProcID][]model.MsgID
	// Resets counts executions of line 25.
	Resets int
	// Adoptions counts executions of the line 18 branch: propositions on
	// which p_{k+1} was compelled to adopt p_k's value to preserve
	// k-SA-Agreement.
	Adoptions int
	// FlushStart is the α step index where the line 26 flush begins.
	FlushStart int
	// ResetBoundary is the α step index reached when the last reset
	// occurred (0 if none): p_k's steps before it belong to every γ_i.
	ResetBoundary int
	// Broadcasts counts sync-broadcast invocations per process.
	Broadcasts map[model.ProcID]int
	// Live holds the incremental checkers that observed α as it was
	// built: the Lemma 1-6 spec checks (k-SA, SR channels,
	// well-formedness) ran online during Algorithm 1, and Verify reads
	// their latched verdicts instead of rescanning α.
	Live *spec.Monitor
	// oracle retains the decision table for the continuation runtime.
	oracle *tableOracle
	// runtime retains the driven runtime so callers can extend the run
	// (Extend) after the construction.
	runtime *sched.Runtime
}

// tableOracle implements the decision table of Algorithm 1, lines 16-20:
// processes decide their own value, except p_{k+1}, which adopts p_k's
// value whenever p_1..p_k have all decided on the object (line 17-18).
// After Finish it degrades to a free k-SA oracle seeded with the table, so
// the run can be extended while preserving k-SA-Agreement.
type tableOracle struct {
	k       int
	decided map[model.KSAID]map[model.ProcID]model.Value
	// lastProposed records the last proposal handled, so the scheduler
	// can evaluate the line 21 condition right after a propose step.
	lastObj  model.KSAID
	finished bool
	// adoptions counts executions of the line 18 branch (p_{k+1} adopting
	// p_k's value).
	adoptions int
	// reg observes proposals and adoptions (nil-safe).
	reg       *obs.Registry
	proposals *obs.Counter
	adopted   *obs.Counter
}

var _ sched.Oracle = (*tableOracle)(nil)

func newTableOracle(k int, reg *obs.Registry) *tableOracle {
	return &tableOracle{
		k:         k,
		decided:   make(map[model.KSAID]map[model.ProcID]model.Value),
		reg:       reg,
		proposals: reg.Counter("adversary.oracle.proposals"),
		adopted:   reg.Counter("adversary.adoptions"),
	}
}

// allLowDecided reports ∀j ≤ k: decided[obj][j] ≠ ⊥ (the condition of
// lines 17 and 21).
func (o *tableOracle) allLowDecided(obj model.KSAID) bool {
	m := o.decided[obj]
	for j := 1; j <= o.k; j++ {
		if _, ok := m[model.ProcID(j)]; !ok {
			return false
		}
	}
	return true
}

// distinct returns the distinct values decided on obj.
func (o *tableOracle) distinct(obj model.KSAID) []model.Value {
	seen := make(map[model.Value]bool)
	var out []model.Value
	for j := 1; j <= o.k+1; j++ {
		if v, ok := o.decided[obj][model.ProcID(j)]; ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Propose implements sched.Oracle.
func (o *tableOracle) Propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value {
	m := o.decided[obj]
	if m == nil {
		m = make(map[model.ProcID]model.Value)
		o.decided[obj] = m
	}
	if o.finished {
		// Free mode for run extensions: keep k-SA-Agreement with respect
		// to the values already in the table.
		if w, ok := m[proc]; ok {
			return w // one-shot replay guard; should not happen
		}
		dv := o.distinct(obj)
		for _, d := range dv {
			if d == v {
				m[proc] = v
				return v
			}
		}
		if len(dv) < o.k {
			m[proc] = v
			return v
		}
		m[proc] = dv[len(dv)-1]
		return m[proc]
	}
	o.lastObj = obj
	o.proposals.Inc()
	// Lines 17-19.
	if int(proc) == o.k+1 && o.allLowDecided(obj) {
		m[proc] = m[model.ProcID(o.k)]
		o.adoptions++
		o.adopted.Inc()
		o.reg.Emit("adversary.adoption",
			obs.Int("obj", int64(obj)), obs.Int("proc", int64(proc)),
			obs.Str("proposed", string(v)), obs.Str("adopted", string(m[proc])))
	} else {
		m[proc] = v
	}
	return m[proc]
}

// Finish switches the oracle to free mode for run extensions.
func (o *tableOracle) Finish() { o.finished = true }

// Run executes adversarial_scheduler(k, N, B, 𝓑) — Algorithm 1.
func Run(opts Options) (*Result, error) {
	if opts.K < 2 {
		return nil, fmt.Errorf("adversary: K must be at least 2 (the construction poses k > 1), got %d", opts.K)
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("adversary: N must be positive, got %d", opts.N)
	}
	if opts.NewAutomaton == nil {
		return nil, fmt.Errorf("adversary: NewAutomaton is required")
	}
	k, n := opts.K, opts.N
	reg := opts.Obs
	oracle := newTableOracle(k, reg)
	rt, err := sched.New(sched.Config{
		N:            k + 1,
		NewAutomaton: opts.NewAutomaton,
		Oracle:       oracle,
		Obs:          reg,
		// The Lemma 1-6 checks run incrementally while Algorithm 1
		// drives the run; Verify consumes the latched verdicts.
		LiveSpecs: []spec.Spec{spec.KSA(k), spec.Channels(), spec.WellFormed()},
	})
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	met := newAdvMetrics(reg)

	res := &Result{
		K:          k,
		N:          n,
		Counted:    make(map[model.ProcID][]model.MsgID, k+1),
		Broadcasts: make(map[model.ProcID]int, k+1),
		oracle:     oracle,
		runtime:    rt,
	}

	// Line 3: sequential phases, p_1 through p_{k+1}.
	for i := 1; i <= k+1; i++ {
		pi := model.ProcID(i)
		localDel := 0 // line 4
		var counted []model.MsgID
		// step = ⊥ initially; sync tracking of the current
		// sync-broadcast: it has returned from B.broadcast and the
		// message has been B-delivered locally.
		syncOpen := false
		var syncMsg model.MsgID
		returned, deliveredOwn := false, false
		steps := 0

		span := met.phaseEnter(reg, i)

		for localDel < n { // line 5
			steps++
			if steps > opts.maxSteps() {
				return nil, &ErrNotSoloProgressing{Proc: pi, Phase: i, Steps: steps - 1}
			}
			// Lines 6-7: invoke a fresh sync-broadcast when none is in
			// progress or the previous one completed.
			if !syncOpen || (returned && deliveredOwn) {
				msg, err := rt.InvokeBroadcast(pi, Synch)
				if err != nil {
					return nil, fmt.Errorf("adversary: invoking sync-broadcast on %v: %w", pi, err)
				}
				syncMsg, syncOpen, returned, deliveredOwn = msg, true, false, false
				res.Broadcasts[pi]++
				met.broadcast()
				continue
			}
			// Line 8: p_i's next local step in C(α), according to 𝓑.
			step, ok, err := rt.ExecNext(pi)
			if err != nil {
				return nil, fmt.Errorf("adversary: executing %v: %w", pi, err)
			}
			if !ok {
				// The implementation is waiting for events only other
				// processes could produce: no solo progress.
				return nil, &ErrNotSoloProgressing{Proc: pi, Phase: i, Steps: steps - 1}
			}
			switch step.Kind {
			case model.KindSend:
				if step.Peer == pi {
					// Lines 10-11: self-sends are received immediately.
					if _, err := rt.ReceiveInstance(step.Msg); err != nil {
						return nil, fmt.Errorf("adversary: self-receive at %v: %w", pi, err)
					}
					met.selfReceive()
				}
				// Lines 12-13: sends to other processes stay in flight
				// (the runtime's network is the scheduler's `sent` set).
			case model.KindDeliver:
				if step.Peer == pi {
					// Lines 14-15: p_i B-delivers one of its own messages.
					localDel++
					met.watermark(localDel)
					if localDel >= 1 {
						counted = append(counted, step.Msg)
					}
					if step.Msg == syncMsg {
						deliveredOwn = true
					}
				}
			case model.KindBroadcastReturn:
				if step.Msg == syncMsg {
					returned = true
				}
			case model.KindPropose:
				// Lines 16-19 ran inside the oracle when the propose
				// action executed; line 20 appends the decision.
				if _, err := rt.FireDecide(pi); err != nil {
					return nil, fmt.Errorf("adversary: firing decision at %v: %w", pi, err)
				}
				// Lines 21-25.
				if i == k && oracle.allLowDecided(step.Obj) {
					if err := flushKToKPlus1(rt, k); err != nil {
						return nil, err
					}
					localDel = -1
					counted = nil
					res.Resets++
					res.ResetBoundary = rt.StepCount()
					met.reset(reg, i, res.ResetBoundary)
				}
			}
		}
		res.Counted[pi] = counted
		met.phaseExit(reg, span, i, steps, len(counted))
	}

	// Line 26: every message still in flight is received.
	res.FlushStart = rt.StepCount()
	flushSpan := reg.StartSpan("adversary.flush")
	flushed := 0
	for len(rt.InFlight()) > 0 {
		if _, err := rt.ReceiveIndex(0); err != nil {
			return nil, fmt.Errorf("adversary: final flush: %w", err)
		}
		flushed++
	}
	met.flushed(flushed)
	flushSpan.End()

	res.Adoptions = oracle.adoptions

	// Line 27: return α (a prefix — liveness is not claimed for it).
	res.Alpha = &trace.Trace{X: rt.Execution(), Complete: false, Name: fmt.Sprintf("alpha(k=%d,N=%d)", k, n)}
	res.Beta = &trace.Trace{X: res.Alpha.X.ProjectBroadcast(), Complete: false, Name: fmt.Sprintf("beta(k=%d,N=%d)", k, n)}
	if mon := rt.LiveMonitor(); mon != nil {
		// α is a prefix, not a complete run; Finish(false) skips the
		// liveness clauses, matching Check on Complete=false.
		mon.Finish(false)
		res.Live = mon
	}
	return res, nil
}

// flushKToKPlus1 implements lines 22-24: p_{k+1} receives every in-flight
// message sent to it by p_k, in send order.
func flushKToKPlus1(rt *sched.Runtime, k int) error {
	pk, pk1 := model.ProcID(k), model.ProcID(k+1)
	for {
		found := false
		for _, f := range rt.InFlight() {
			if f.Proc == pk && f.Peer == pk1 {
				if _, err := rt.ReceiveInstance(f.Msg); err != nil {
					return fmt.Errorf("adversary: flushing p_k->p_{k+1}: %w", err)
				}
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
}

// Extend continues the run past α under a fair schedule until quiescence
// (or maxEvents), with the oracle in free mode. The returned trace extends
// α: it is used by experiment E10 to complete deliveries and exhibit
// ordering-specification violations that α only sets up.
func (r *Result) Extend(maxEvents int) (*trace.Trace, error) {
	if r.runtime == nil {
		return nil, fmt.Errorf("adversary: result has no retained runtime")
	}
	r.oracle.Finish()
	tr, err := r.runtime.RunFair(sched.RunOptions{MaxEvents: maxEvents})
	if err != nil {
		return nil, fmt.Errorf("adversary: extending run: %w", err)
	}
	tr.Name = fmt.Sprintf("alpha-extended(k=%d,N=%d)", r.K, r.N)
	return tr, nil
}

// Gamma builds the execution γ_{k,N,B,𝓑,i} of Definition 4: the steps of
// p_i strictly before the line 26 flush, together with the steps of p_k
// succeeded by a reset of local_del on line 25.
func (r *Result) Gamma(i model.ProcID) *trace.Trace {
	x := r.Alpha.X
	out := model.NewExecution(x.N)
	pk := model.ProcID(r.K)
	for idx, s := range x.Steps {
		include := (s.Proc == i && idx < r.FlushStart) ||
			(s.Proc == pk && idx < r.ResetBoundary)
		if include {
			out.Append(s)
		}
	}
	return &trace.Trace{X: out, Complete: false, Name: fmt.Sprintf("gamma(k=%d,N=%d,i=%d)", r.K, r.N, int(i))}
}
