// Package workload generates broadcast request patterns for simulations
// and benchmarks: uniform round-robin load, skewed (hot-broadcaster) load,
// and bursty load. Generators are deterministic functions of their seed.
package workload

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/sched"
)

// Kind selects a generator shape.
type Kind int

// The workload shapes.
const (
	// Uniform spreads messages round-robin across processes.
	Uniform Kind = iota + 1
	// Skewed draws broadcasters from a geometric-ish distribution: low
	// process ids broadcast most messages (a "hot writer" pattern).
	Skewed
	// Bursty alternates silent processes with bursts from one process.
	Bursty
	// Single puts every broadcast on process 1. Useful as the
	// deterministic-order case of the conformance harness: with one
	// broadcaster, FIFO-or-stronger abstractions must deliver in exactly
	// the broadcast order at every process, on either runtime.
	Single
)

var kindNames = map[Kind]string{
	Uniform: "uniform",
	Skewed:  "skewed",
	Bursty:  "bursty",
	Single:  "single",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config parameterizes a generator.
type Config struct {
	// Kind selects the shape (default Uniform).
	Kind Kind
	// N is the number of processes. Required.
	N int
	// Messages is the total number of broadcasts. Required.
	Messages int
	// Seed drives the randomized shapes.
	Seed uint64
	// BurstLen is the burst length for Bursty (default 4).
	BurstLen int
	// Prefix tags the generated payloads (default "w").
	Prefix string
}

// Generate produces the broadcast requests. It returns an error on
// invalid configuration.
func Generate(cfg Config) ([]sched.BroadcastReq, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	if cfg.Messages < 0 {
		return nil, fmt.Errorf("workload: Messages must be non-negative, got %d", cfg.Messages)
	}
	if cfg.Kind == 0 {
		cfg.Kind = Uniform
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 4
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "w"
	}
	src := rng.New(cfg.Seed)
	out := make([]sched.BroadcastReq, 0, cfg.Messages)
	pick := func(i int) model.ProcID {
		switch cfg.Kind {
		case Skewed:
			// Geometric: p1 twice as likely as p2, etc., truncated.
			p := 1
			for p < cfg.N && src.Bool() {
				p++
			}
			return model.ProcID(p)
		case Bursty:
			burst := i / cfg.BurstLen
			return model.ProcID(burst%cfg.N + 1)
		case Single:
			return 1
		default:
			return model.ProcID(i%cfg.N + 1)
		}
	}
	for i := 0; i < cfg.Messages; i++ {
		p := pick(i)
		out = append(out, sched.BroadcastReq{
			Proc:    p,
			Payload: model.Payload(fmt.Sprintf("%s-%v-%d", cfg.Prefix, cfg.Kind, i)),
		})
	}
	return out, nil
}

// PerProcess counts the requests per process.
func PerProcess(reqs []sched.BroadcastReq) map[model.ProcID]int {
	out := make(map[model.ProcID]int)
	for _, r := range reqs {
		out[r.Proc]++
	}
	return out
}
