package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{N: 0, Messages: 5}); err == nil {
		t.Error("expected error for N=0")
	}
	if _, err := Generate(Config{N: 2, Messages: -1}); err == nil {
		t.Error("expected error for negative Messages")
	}
}

func TestKindString(t *testing.T) {
	if Uniform.String() != "uniform" || Skewed.String() != "skewed" || Bursty.String() != "bursty" {
		t.Error("kind names wrong")
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Error("unknown kind name")
	}
}

func TestUniformRoundRobin(t *testing.T) {
	reqs, err := Generate(Config{N: 3, Messages: 9})
	if err != nil {
		t.Fatal(err)
	}
	counts := PerProcess(reqs)
	for p := 1; p <= 3; p++ {
		if counts[model.ProcID(p)] != 3 {
			t.Errorf("p%d got %d messages, want 3", p, counts[model.ProcID(p)])
		}
	}
}

func TestSkewedFavorsLowIDs(t *testing.T) {
	reqs, err := Generate(Config{Kind: Skewed, N: 4, Messages: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := PerProcess(reqs)
	if counts[1] <= counts[4] {
		t.Errorf("skew inverted: p1=%d p4=%d", counts[1], counts[4])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 400 {
		t.Errorf("total %d", total)
	}
}

func TestBurstyGroups(t *testing.T) {
	reqs, err := Generate(Config{Kind: Bursty, N: 2, Messages: 8, BurstLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if reqs[i].Proc != 1 {
			t.Errorf("req %d from %v, want p1", i, reqs[i].Proc)
		}
	}
	for i := 4; i < 8; i++ {
		if reqs[i].Proc != 2 {
			t.Errorf("req %d from %v, want p2", i, reqs[i].Proc)
		}
	}
}

func TestPayloadsUnique(t *testing.T) {
	f := func(seed uint16) bool {
		reqs, err := Generate(Config{Kind: Skewed, N: 3, Messages: 20, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		for _, r := range reqs {
			if seen[string(r.Payload)] {
				return false
			}
			seen[string(r.Payload)] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := Generate(Config{Kind: Skewed, N: 4, Messages: 50, Seed: 9})
	b, _ := Generate(Config{Kind: Skewed, N: 4, Messages: 50, Seed: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

// TestWorkloadsDriveRuntimes: each workload shape runs green end-to-end
// over a real broadcast implementation.
func TestWorkloadsDriveRuntimes(t *testing.T) {
	for _, kind := range []Kind{Uniform, Skewed, Bursty} {
		reqs, err := Generate(Config{Kind: kind, N: 3, Messages: 9, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := sched.New(sched.Config{N: 3, NewAutomaton: broadcast.NewCausal})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: 5, Broadcasts: reqs})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Complete {
			t.Fatalf("%v workload: incomplete", kind)
		}
		if v := spec.CausalBroadcast().Check(tr); v != nil {
			t.Errorf("%v workload: %s", kind, v)
		}
		_ = trace.BuildIndex(tr)
	}
}
