// Package net provides the concurrent runtime: an in-memory asynchronous
// network where each process runs as its own goroutine and messages travel
// with randomized delays and reordering. It drives the same deterministic
// automata as the step-driven runtime (internal/sched), so algorithms
// verified there run unchanged under real concurrency.
//
// By default the network implements the communication model of Section 2:
// complete (every process can send to every process, including itself),
// reliable (no loss, duplication, or corruption), non-FIFO (randomized
// per-message delay), and asynchronous (finite but unbounded — here
// bounded by MaxDelay — transit times). Crash failures stop a process's
// event loop; messages addressed to crashed processes are dropped, which
// is indistinguishable from them being forever in transit.
//
// A Config.Faults plan deliberately violates the reliability assumptions —
// seeded message loss, duplication, alternative delay distributions, and
// timed partitions — so experiments can measure which broadcast
// specifications survive which model violations. Every injected fault is
// counted under the net.faults.* metrics.
//
// Unlike internal/sched, runs are not deterministic: this runtime exists
// for realistic end-to-end examples, fault-injection experiments, and
// throughput benchmarks, not for the proof machinery. The cross-runtime
// conformance harness (internal/conformance) differentially checks the two
// runtimes against the same specifications using the optional trace
// recorder (Config.RecordTrace).
package net

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// Delivery is one B-delivery observed at a node.
type Delivery struct {
	At      model.ProcID
	From    model.ProcID
	Msg     model.MsgID
	Payload model.Payload
}

// Config configures a Network.
type Config struct {
	// N is the number of processes.
	N int
	// NewAutomaton builds the broadcast algorithm per process. Required.
	NewAutomaton func(id model.ProcID) sched.Automaton
	// K is the agreement degree of the shared k-SA oracle (default 1).
	K int
	// MaxDelay bounds the random per-message transit delay. Zero means
	// inline forwarding: messages are enqueued at their destination in
	// send order (per-link FIFO), though cross-node concurrency remains.
	MaxDelay time.Duration
	// Seed feeds the delay generator and the fault plan's coin flips.
	Seed uint64
	// OnDeliver, if set, observes every B-delivery. It is called from node
	// goroutines and must be safe for concurrent use; it may call back
	// into Broadcast (reentrancy is supported — enqueueing never blocks
	// the node loop).
	OnDeliver func(Delivery)
	// InboxSize is the per-node event buffer (default 1024). When an
	// inbox overflows, the enqueue is shed to a background goroutine, so
	// senders never block; shed messages may arrive out of send order
	// (the network is non-FIFO anyway).
	InboxSize int
	// Faults optionally injects link-level faults (drop, duplication,
	// delay distributions, timed partitions). Nil keeps the reliable
	// network of the model.
	Faults *FaultPlan
	// RecordTrace records broadcast-interface events (invocations,
	// returns, deliveries) plus k-SA propositions, decisions, and crashes
	// into an Execution retrievable via Trace. Used by the cross-runtime
	// conformance harness.
	RecordTrace bool
	// LiveSpecs are specifications checked online during the run: every
	// step the recorder observes is fed to each spec's incremental
	// checker, under the recorder mutex. This works with or without
	// RecordTrace — without it, the run is checked in O(checker state)
	// memory and no step log is kept (streaming mode). Verdicts are read
	// via LiveViolation and FinishLive.
	LiveSpecs []spec.Spec
	// Sink, when non-nil, receives every recorded step under the recorder
	// mutex, in the same linearization the step log and live checkers see
	// — a live tee for streaming consumers such as a trace.BinaryWriter.
	// The sink itself need not be safe for concurrent use: the mutex
	// serializes calls. Works with or without RecordTrace (a sink alone
	// enables the recorder in streaming mode, like LiveSpecs alone).
	Sink trace.Sink
	// Obs receives network metrics (send/receive/delivery counters, the
	// in-flight gauge, delay and handler-latency histograms, fault
	// counters). Nil keeps the cheap standalone counters behind
	// StatsSnapshot and nothing else.
	Obs *obs.Registry
}

type netEvent struct {
	kind    int // 0 receive, 1 broadcast
	from    model.ProcID
	msg     model.MsgID
	payload model.Payload
	// seq is the per-(sender,receiver) send ordinal, used to detect
	// genuinely reordered arrivals on a link.
	seq int64
}

// Network is a running concurrent system.
type Network struct {
	cfg    Config
	nodes  []*node
	oracle *safeOracle
	msgSeq atomic.Int64
	delays *safeRng
	faults *faultState
	rec    *recorder
	start  time.Time

	// mu guards the stopped flag. It is never held across a blocking
	// channel send: enqueuers take it shared just long enough to observe
	// !stopped (and, on the shed path, to register with msgWg), which is
	// what lets Stop proceed even while a reentrant OnDeliver callback is
	// mid-Broadcast. The previous design held it shared across
	// `inbox <- ev` and deadlocked: a full inbox parked the sender inside
	// the read lock, Stop blocked on the write lock, and the node loop
	// that should have drained the inbox was itself the parked sender.
	mu      sync.RWMutex
	stopped bool
	// done is closed when Stop begins; it unparks transit sleepers and
	// shed enqueues so msgWg can drain.
	done   chan struct{}
	msgWg  sync.WaitGroup // transit and shed-enqueue goroutines
	nodeWg sync.WaitGroup // node event loops

	// linkSeq assigns per-(sender,receiver) send ordinals, indexed by
	// (from-1)*N + (to-1). Receivers compare arrivals against a
	// per-sender high-water mark, so the reorder counter means "this link
	// delivered out of send order" — two perfectly-FIFO senders
	// interleaving no longer count (they did when the ordinal was global).
	linkSeq []atomic.Int64
	met     *netMetrics
}

// StatsSnapshot is a plain copy of the network counters (backed by
// internal/obs; this type remains as the compatibility surface of the old
// hand-rolled Stats struct, extended with the drop/reorder/crash counters
// it never tracked and the fault-injection counters).
type StatsSnapshot struct {
	Sent, Received, Delivered, Broadcasts int64
	Dropped, Reordered, Crashes           int64
	// FaultDrops, FaultDups, and PartitionDrops count messages lost,
	// duplicated, and cut by the FaultPlan (zero without one).
	FaultDrops, FaultDups, PartitionDrops int64
}

// node is one process.
type node struct {
	id        model.ProcID
	automaton sched.Automaton
	inbox     chan netEvent
	crashed   atomic.Bool
	delivered atomic.Int64
	returned  atomic.Int64
	// lastSeq[q-1] is the highest send ordinal received from q so far;
	// only the node's own goroutine touches it.
	lastSeq []int64
}

// safeOracle serializes k-SA propositions across node goroutines.
type safeOracle struct {
	mu    sync.Mutex
	inner *sched.FreeOracle
}

func (o *safeOracle) propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Propose(obj, proc, v)
}

// safeRng serializes the delay/fault generator.
type safeRng struct {
	mu  sync.Mutex
	src *rng.Source
}

// uniform draws a uniform duration in [0, max). The draw reduces a full
// 64-bit value modulo the int64 nanosecond count: the previous
// int-truncating Intn path overflowed for max > ~2.1s on 32-bit platforms
// (Intn panics on a non-positive bound). The modulo bias is max/2^64 —
// negligible for any realistic delay.
func (s *safeRng) uniform(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.src.Uint64() % uint64(max))
}

// float64 draws a uniform value in [0, 1) for fault coin flips.
func (s *safeRng) float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Float64()
}

// New builds and starts a network. Callers must Stop it.
func New(cfg Config) (*Network, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("net: N must be positive, got %d", cfg.N)
	}
	if cfg.NewAutomaton == nil {
		return nil, fmt.Errorf("net: NewAutomaton is required")
	}
	if err := cfg.Faults.validate(cfg.N); err != nil {
		return nil, err
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 1024
	}
	nw := &Network{
		cfg:     cfg,
		oracle:  &safeOracle{inner: sched.NewFreeOracle(cfg.K)},
		delays:  &safeRng{src: rng.New(cfg.Seed)},
		faults:  compileFaults(cfg.Faults),
		start:   time.Now(),
		done:    make(chan struct{}),
		linkSeq: make([]atomic.Int64, cfg.N*cfg.N),
		met:     newNetMetrics(cfg.Obs),
	}
	if cfg.RecordTrace || len(cfg.LiveSpecs) > 0 || cfg.Sink != nil {
		nw.rec = newRecorder(cfg.N, cfg.RecordTrace, cfg.LiveSpecs, cfg.Sink)
	}
	nw.nodes = make([]*node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nw.nodes[i] = &node{
			id:        model.ProcID(i + 1),
			automaton: cfg.NewAutomaton(model.ProcID(i + 1)),
			inbox:     make(chan netEvent, cfg.InboxSize),
			lastSeq:   make([]int64, cfg.N),
		}
	}
	for _, nd := range nw.nodes {
		nd := nd
		// Init runs in the node's goroutine before consuming events.
		nw.nodeWg.Add(1)
		go func() {
			defer nw.nodeWg.Done()
			nw.runNode(nd)
		}()
	}
	return nw, nil
}

// runNode is a node's event loop.
func (nw *Network) runNode(nd *node) {
	nw.handle(nd, func(env *sched.Env) { nd.automaton.Init(env) })
	for ev := range nd.inbox {
		if nd.crashed.Load() {
			nw.met.dropped.Inc()
			continue // drain without processing
		}
		switch ev.kind {
		case 0:
			nw.met.received.Inc()
			if last := nd.lastSeq[ev.from-1]; ev.seq < last {
				nw.met.reordered.Inc()
			} else {
				nd.lastSeq[ev.from-1] = ev.seq
			}
			nw.handle(nd, func(env *sched.Env) { nd.automaton.OnReceive(env, ev.from, ev.payload) })
		case 1:
			nw.met.broadcasts.Inc()
			nw.rec.record(model.Step{Proc: nd.id, Kind: model.KindBroadcastInvoke, Msg: ev.msg, Payload: ev.payload})
			nw.handle(nd, func(env *sched.Env) { nd.automaton.OnBroadcast(env, ev.msg, ev.payload) })
		}
	}
}

// handle runs a handler and applies the emitted actions, including the
// cascading effects of immediate k-SA decisions.
func (nw *Network) handle(nd *node, call func(env *sched.Env)) {
	var began time.Time
	if nw.met.handleUS != nil {
		began = time.Now()
	}
	env := sched.NewEnv(nd.id, nw.cfg.N)
	call(env)
	queue := env.TakeActions()
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		switch a.Kind {
		case model.KindSend:
			nw.route(nd.id, a.To, a.Payload)
		case model.KindPropose:
			nw.rec.record(model.Step{Proc: nd.id, Kind: model.KindPropose, Obj: a.Obj, Val: a.Val})
			val := nw.oracle.propose(a.Obj, nd.id, a.Val)
			nw.rec.record(model.Step{Proc: nd.id, Kind: model.KindDecide, Obj: a.Obj, Val: val})
			env := sched.NewEnv(nd.id, nw.cfg.N)
			nd.automaton.OnDecide(env, a.Obj, val)
			queue = append(queue, env.TakeActions()...)
		case model.KindDeliver:
			nd.delivered.Add(1)
			nw.met.delivered.Inc()
			nw.rec.record(model.Step{Proc: nd.id, Kind: model.KindDeliver, Peer: a.Origin, Msg: a.Msg, Payload: a.Payload})
			if nw.cfg.OnDeliver != nil {
				nw.cfg.OnDeliver(Delivery{At: nd.id, From: a.Origin, Msg: a.Msg, Payload: a.Payload})
			}
		case model.KindBroadcastReturn:
			nd.returned.Add(1)
			nw.rec.record(model.Step{Proc: nd.id, Kind: model.KindBroadcastReturn, Msg: a.Msg})
		case model.KindInternal:
			// No effect at the network layer.
		}
	}
	if nw.met.handleUS != nil {
		nw.met.handleUS.Observe(time.Since(began).Microseconds())
	}
}

// transitDelay draws one per-message transit delay from the configured
// distribution (the fault plan's override, or uniform [0, MaxDelay)).
func (nw *Network) transitDelay() time.Duration {
	if d := nw.faults.delayDist(); d != nil {
		return d.sample(nw.delays)
	}
	return nw.delays.uniform(nw.cfg.MaxDelay)
}

// route forwards a point-to-point message, applying the fault plan and a
// random transit delay.
func (nw *Network) route(from, to model.ProcID, payload model.Payload) {
	if to < 1 || int(to) > nw.cfg.N {
		nw.met.dropped.Inc()
		return
	}
	nw.met.sent.Inc()
	target := nw.nodes[to-1]
	if nw.faults.cut(from, to, time.Since(nw.start), nw.met) {
		return // the link is severed by an active partition
	}
	drop, dup := nw.faults.linkProbs(from, to)
	if drop > 0 && nw.delays.float64() < drop {
		nw.met.faultDropped.Inc()
		return
	}
	copies := 1
	if dup > 0 && nw.delays.float64() < dup {
		copies = 2
		nw.met.faultDuplicated.Inc()
	}
	seq := nw.linkSeq[(int(from)-1)*nw.cfg.N+(int(to)-1)].Add(1)
	ev := netEvent{kind: 0, from: from, payload: payload, seq: seq}
	for c := 0; c < copies; c++ {
		d := nw.transitDelay()
		nw.met.delayUS.Observe(d.Microseconds())
		if d == 0 {
			// Inline fast path: no transit goroutine, so zero-delay links
			// are per-link FIFO and the reorder counter stays exactly
			// zero on delay-free fault-free runs.
			if !nw.enqueue(target, ev) {
				nw.met.dropped.Inc()
			}
			continue
		}
		if !nw.beginAsync() {
			nw.met.dropped.Inc()
			continue
		}
		nw.met.inFlight.Inc()
		go func(d time.Duration) {
			defer nw.msgWg.Done()
			defer nw.met.inFlight.Dec()
			select {
			case <-time.After(d):
			case <-nw.done:
				// Shutdown mid-transit: indistinguishable from a message
				// still in flight.
				nw.met.dropped.Inc()
				return
			}
			if !nw.enqueue(target, ev) {
				nw.met.dropped.Inc()
			}
		}(d)
	}
}

// beginAsync registers a transit goroutine with msgWg, unless the network
// already stopped. Registration happens under the shared lock so Stop's
// msgWg.Wait can never miss a registration that observed !stopped.
func (nw *Network) beginAsync() bool {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	if nw.stopped {
		return false
	}
	nw.msgWg.Add(1)
	return true
}

// enqueue hands ev to nd's event loop without ever blocking the caller and
// without holding any lock across a blocking send. The fast path is a
// non-blocking send under the shared lock (which cannot block: the select
// has a default); a full inbox sheds the enqueue to a goroutine registered
// with msgWg that parks on the channel until space frees or Stop begins.
// This is the reentrancy-deadlock fix: an OnDeliver callback may call
// straight back into Broadcast while Stop awaits the exclusive lock, and
// neither may wedge the node loop that has to drain the inbox.
func (nw *Network) enqueue(nd *node, ev netEvent) bool {
	if nd.crashed.Load() {
		return false
	}
	nw.mu.RLock()
	if nw.stopped {
		nw.mu.RUnlock()
		return false
	}
	select {
	case nd.inbox <- ev:
		nw.mu.RUnlock()
		return true
	default:
	}
	// Inbox full: shed. msgWg.Add happens while the shared lock still
	// guarantees Stop has not begun, so the inbox cannot close underneath
	// the parked goroutine.
	nw.msgWg.Add(1)
	nw.mu.RUnlock()
	go func() {
		defer nw.msgWg.Done()
		select {
		case nd.inbox <- ev:
		case <-nw.done:
			nw.met.dropped.Inc()
		}
	}()
	return true
}

// Broadcast invokes B.broadcast at process p with the given content and
// returns the fresh message identity. It never blocks: under inbox
// overflow the invocation event is enqueued asynchronously, and an event
// still queued when Stop begins is discarded (indistinguishable from a
// crash between invocation and any send).
func (nw *Network) Broadcast(p model.ProcID, payload model.Payload) (model.MsgID, error) {
	if p < 1 || int(p) > nw.cfg.N {
		return model.NoMsg, fmt.Errorf("net: no process %v", p)
	}
	nd := nw.nodes[p-1]
	if nd.crashed.Load() {
		return model.NoMsg, fmt.Errorf("net: %v is crashed", p)
	}
	msg := model.MsgID(nw.msgSeq.Add(1))
	if !nw.enqueue(nd, netEvent{kind: 1, msg: msg, payload: payload}) {
		return model.NoMsg, fmt.Errorf("net: network is stopped or %v crashed", p)
	}
	return msg, nil
}

// Crash crashes process p: it stops processing events immediately.
func (nw *Network) Crash(p model.ProcID) error {
	if p < 1 || int(p) > nw.cfg.N {
		return fmt.Errorf("net: no process %v", p)
	}
	if nw.nodes[p-1].crashed.CompareAndSwap(false, true) {
		nw.met.crashes.Inc()
		nw.rec.record(model.Step{Proc: p, Kind: model.KindCrash})
	}
	return nil
}

// Delivered reports how many messages process p has B-delivered.
func (nw *Network) Delivered(p model.ProcID) int64 {
	if p < 1 || int(p) > nw.cfg.N {
		return 0
	}
	return nw.nodes[p-1].delivered.Load()
}

// Returned reports how many B.broadcast invocations at process p have
// returned. The conformance harness uses it to respect well-formedness
// (invocations and responses alternate per process).
func (nw *Network) Returned(p model.ProcID) int64 {
	if p < 1 || int(p) > nw.cfg.N {
		return 0
	}
	return nw.nodes[p-1].returned.Load()
}

// StatsSnapshot returns the current counters.
func (nw *Network) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		Sent:           nw.met.sent.Value(),
		Received:       nw.met.received.Value(),
		Delivered:      nw.met.delivered.Value(),
		Broadcasts:     nw.met.broadcasts.Value(),
		Dropped:        nw.met.dropped.Value(),
		Reordered:      nw.met.reordered.Value(),
		Crashes:        nw.met.crashes.Value(),
		FaultDrops:     nw.met.faultDropped.Value(),
		FaultDups:      nw.met.faultDuplicated.Value(),
		PartitionDrops: nw.met.faultPartitionDropped.Value(),
	}
}

// WaitUntil polls cond until it holds or the timeout elapses, returning
// whether it held. It is the intended way for integration tests and
// examples to await eventual-delivery conditions. Polling backs off
// exponentially from 200µs to 5ms, so a slow condition costs bounded
// wake-ups instead of a busy core.
func (nw *Network) WaitUntil(cond func() bool, timeout time.Duration) bool {
	const (
		floor   = 200 * time.Microsecond
		ceiling = 5 * time.Millisecond
	)
	deadline := time.Now().Add(timeout)
	sleep := floor
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(sleep)
		if sleep < ceiling {
			sleep *= 2
			if sleep > ceiling {
				sleep = ceiling
			}
		}
	}
}

// Stop shuts the network down: no further events are accepted, in-flight
// message goroutines drain, and all node goroutines join. It is
// idempotent, and it terminates even while OnDeliver callbacks are
// reentrantly broadcasting into full inboxes.
func (nw *Network) Stop() {
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		return
	}
	nw.stopped = true
	nw.mu.Unlock()
	// Unpark every transit sleeper and shed enqueue; they observe done,
	// count themselves dropped, and exit without touching an inbox.
	close(nw.done)
	nw.msgWg.Wait()
	// No sender remains: new enqueues observe stopped under the shared
	// lock before reaching a channel, so closing the inboxes is safe and
	// ends the node loops.
	for _, nd := range nw.nodes {
		close(nd.inbox)
	}
	nw.nodeWg.Wait()
}
