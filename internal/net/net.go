// Package net provides the concurrent runtime: an in-memory asynchronous
// reliable network where each process runs as its own goroutine and
// messages travel with randomized delays and reordering. It drives the
// same deterministic automata as the step-driven runtime (internal/sched),
// so algorithms verified there run unchanged under real concurrency.
//
// The network implements the communication model of Section 2: complete
// (every process can send to every process, including itself), reliable
// (no loss, duplication, or corruption), non-FIFO (randomized per-message
// delay), and asynchronous (finite but unbounded — here bounded by
// MaxDelay — transit times). Crash failures stop a process's event loop;
// messages addressed to crashed processes are dropped, which is
// indistinguishable from them being forever in transit.
//
// Unlike internal/sched, runs are not deterministic: this runtime exists
// for realistic end-to-end examples and throughput benchmarks, not for
// the proof machinery.
package net

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/sched"
)

// Delivery is one B-delivery observed at a node.
type Delivery struct {
	At      model.ProcID
	From    model.ProcID
	Msg     model.MsgID
	Payload model.Payload
}

// Config configures a Network.
type Config struct {
	// N is the number of processes.
	N int
	// NewAutomaton builds the broadcast algorithm per process. Required.
	NewAutomaton func(id model.ProcID) sched.Automaton
	// K is the agreement degree of the shared k-SA oracle (default 1).
	K int
	// MaxDelay bounds the random per-message transit delay. Zero means
	// immediate forwarding (still concurrent, still reordered by
	// goroutine scheduling).
	MaxDelay time.Duration
	// Seed feeds the delay generator.
	Seed uint64
	// OnDeliver, if set, observes every B-delivery (called from node
	// goroutines; it must be safe for concurrent use).
	OnDeliver func(Delivery)
	// InboxSize is the per-node event buffer (default 1024).
	InboxSize int
	// Obs receives network metrics (send/receive/delivery counters, the
	// in-flight gauge, delay and handler-latency histograms). Nil keeps
	// the cheap standalone counters behind StatsSnapshot and nothing else.
	Obs *obs.Registry
}

type netEvent struct {
	kind    int // 0 receive, 1 broadcast
	from    model.ProcID
	msg     model.MsgID
	payload model.Payload
	// seq is the global send ordinal, used to detect reordered arrivals.
	seq int64
}

// Network is a running concurrent system.
type Network struct {
	cfg    Config
	nodes  []*node
	oracle *safeOracle
	msgSeq atomic.Int64
	delays *safeRng

	// mu guards shutdown: senders hold it shared while enqueueing into
	// inboxes; Stop takes it exclusively to flip stopped.
	mu      sync.RWMutex
	stopped bool
	msgWg   sync.WaitGroup // in-flight message goroutines
	nodeWg  sync.WaitGroup // node event loops

	sendSeq atomic.Int64
	met     *netMetrics
}

// StatsSnapshot is a plain copy of the network counters (now backed by
// internal/obs; this type remains as the compatibility surface of the old
// hand-rolled Stats struct, extended with the drop/reorder/crash counters
// it never tracked).
type StatsSnapshot struct {
	Sent, Received, Delivered, Broadcasts int64
	Dropped, Reordered, Crashes           int64
}

// node is one process.
type node struct {
	id        model.ProcID
	automaton sched.Automaton
	inbox     chan netEvent
	crashed   atomic.Bool
	delivered atomic.Int64
	// lastSeq is the highest send ordinal received so far; only the
	// node's own goroutine touches it.
	lastSeq int64
}

// safeOracle serializes k-SA propositions across node goroutines.
type safeOracle struct {
	mu    sync.Mutex
	inner *sched.FreeOracle
}

func (o *safeOracle) propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.inner.Propose(obj, proc, v)
}

// safeRng serializes the delay generator.
type safeRng struct {
	mu  sync.Mutex
	src *rng.Source
}

func (s *safeRng) delay(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.src.Intn(int(max)))
}

// New builds and starts a network. Callers must Stop it.
func New(cfg Config) (*Network, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("net: N must be positive, got %d", cfg.N)
	}
	if cfg.NewAutomaton == nil {
		return nil, fmt.Errorf("net: NewAutomaton is required")
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 1024
	}
	nw := &Network{
		cfg:    cfg,
		oracle: &safeOracle{inner: sched.NewFreeOracle(cfg.K)},
		delays: &safeRng{src: rng.New(cfg.Seed)},
		met:    newNetMetrics(cfg.Obs),
	}
	nw.nodes = make([]*node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nw.nodes[i] = &node{
			id:        model.ProcID(i + 1),
			automaton: cfg.NewAutomaton(model.ProcID(i + 1)),
			inbox:     make(chan netEvent, cfg.InboxSize),
		}
	}
	for _, nd := range nw.nodes {
		nd := nd
		// Init runs in the node's goroutine before consuming events.
		nw.nodeWg.Add(1)
		go func() {
			defer nw.nodeWg.Done()
			nw.runNode(nd)
		}()
	}
	return nw, nil
}

// runNode is a node's event loop.
func (nw *Network) runNode(nd *node) {
	nw.handle(nd, func(env *sched.Env) { nd.automaton.Init(env) })
	for ev := range nd.inbox {
		if nd.crashed.Load() {
			nw.met.dropped.Inc()
			continue // drain without processing
		}
		switch ev.kind {
		case 0:
			nw.met.received.Inc()
			if ev.seq < nd.lastSeq {
				nw.met.reordered.Inc()
			} else {
				nd.lastSeq = ev.seq
			}
			nw.handle(nd, func(env *sched.Env) { nd.automaton.OnReceive(env, ev.from, ev.payload) })
		case 1:
			nw.met.broadcasts.Inc()
			nw.handle(nd, func(env *sched.Env) { nd.automaton.OnBroadcast(env, ev.msg, ev.payload) })
		}
	}
}

// handle runs a handler and applies the emitted actions, including the
// cascading effects of immediate k-SA decisions.
func (nw *Network) handle(nd *node, call func(env *sched.Env)) {
	var began time.Time
	if nw.met.handleUS != nil {
		began = time.Now()
	}
	env := sched.NewEnv(nd.id, nw.cfg.N)
	call(env)
	queue := env.TakeActions()
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		switch a.Kind {
		case model.KindSend:
			nw.route(nd.id, a.To, a.Payload)
		case model.KindPropose:
			val := nw.oracle.propose(a.Obj, nd.id, a.Val)
			env := sched.NewEnv(nd.id, nw.cfg.N)
			nd.automaton.OnDecide(env, a.Obj, val)
			queue = append(queue, env.TakeActions()...)
		case model.KindDeliver:
			nd.delivered.Add(1)
			nw.met.delivered.Inc()
			if nw.cfg.OnDeliver != nil {
				nw.cfg.OnDeliver(Delivery{At: nd.id, From: a.Origin, Msg: a.Msg, Payload: a.Payload})
			}
		case model.KindBroadcastReturn, model.KindInternal:
			// No effect at the network layer.
		}
	}
	if nw.met.handleUS != nil {
		nw.met.handleUS.Observe(time.Since(began).Microseconds())
	}
}

// route forwards a point-to-point message with a random delay.
func (nw *Network) route(from, to model.ProcID, payload model.Payload) {
	if to < 1 || int(to) > nw.cfg.N {
		nw.met.dropped.Inc()
		return
	}
	nw.met.sent.Inc()
	target := nw.nodes[to-1]
	d := nw.delays.delay(nw.cfg.MaxDelay)
	nw.met.delayUS.Observe(d.Microseconds())
	seq := nw.sendSeq.Add(1)
	nw.met.inFlight.Inc()
	nw.msgWg.Add(1)
	go func() {
		defer nw.msgWg.Done()
		defer nw.met.inFlight.Dec()
		if d > 0 {
			time.Sleep(d)
		}
		// A message dropped here is indistinguishable from one still in
		// transit at shutdown or addressed to a crashed process.
		if !nw.send(target, netEvent{kind: 0, from: from, payload: payload, seq: seq}) {
			nw.met.dropped.Inc()
		}
	}()
}

// send enqueues an event unless the network stopped or the target
// crashed; it reports whether the event was enqueued. Holding the
// shutdown lock shared guarantees the inbox cannot close mid-send.
func (nw *Network) send(nd *node, ev netEvent) bool {
	nw.mu.RLock()
	defer nw.mu.RUnlock()
	if nw.stopped || nd.crashed.Load() {
		return false
	}
	nd.inbox <- ev
	return true
}

// Broadcast invokes B.broadcast at process p with the given content and
// returns the fresh message identity.
func (nw *Network) Broadcast(p model.ProcID, payload model.Payload) (model.MsgID, error) {
	if p < 1 || int(p) > nw.cfg.N {
		return model.NoMsg, fmt.Errorf("net: no process %v", p)
	}
	nd := nw.nodes[p-1]
	if nd.crashed.Load() {
		return model.NoMsg, fmt.Errorf("net: %v is crashed", p)
	}
	msg := model.MsgID(nw.msgSeq.Add(1))
	if !nw.send(nd, netEvent{kind: 1, msg: msg, payload: payload}) {
		return model.NoMsg, fmt.Errorf("net: network is stopped or %v crashed", p)
	}
	return msg, nil
}

// Crash crashes process p: it stops processing events immediately.
func (nw *Network) Crash(p model.ProcID) error {
	if p < 1 || int(p) > nw.cfg.N {
		return fmt.Errorf("net: no process %v", p)
	}
	if nw.nodes[p-1].crashed.CompareAndSwap(false, true) {
		nw.met.crashes.Inc()
	}
	return nil
}

// Delivered reports how many messages process p has B-delivered.
func (nw *Network) Delivered(p model.ProcID) int64 {
	if p < 1 || int(p) > nw.cfg.N {
		return 0
	}
	return nw.nodes[p-1].delivered.Load()
}

// StatsSnapshot returns the current counters.
func (nw *Network) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		Sent:       nw.met.sent.Value(),
		Received:   nw.met.received.Value(),
		Delivered:  nw.met.delivered.Value(),
		Broadcasts: nw.met.broadcasts.Value(),
		Dropped:    nw.met.dropped.Value(),
		Reordered:  nw.met.reordered.Value(),
		Crashes:    nw.met.crashes.Value(),
	}
}

// WaitUntil polls cond until it holds or the timeout elapses, returning
// whether it held. It is the intended way for integration tests and
// examples to await eventual-delivery conditions.
func (nw *Network) WaitUntil(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stop shuts the network down: no further events are accepted, in-flight
// message goroutines drain, and all node goroutines join. It is
// idempotent.
func (nw *Network) Stop() {
	nw.mu.Lock()
	if nw.stopped {
		nw.mu.Unlock()
		return
	}
	nw.stopped = true
	nw.mu.Unlock()
	// All senders either finished or will observe stopped; once they have
	// drained, closing the inboxes ends the node loops.
	nw.msgWg.Wait()
	for _, nd := range nw.nodes {
		close(nd.inbox)
	}
	nw.nodeWg.Wait()
}
