package net_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
)

// TestReentrantOnDeliverStopNoDeadlock is the regression test for the
// shutdown/reentrancy deadlock: the old Network.send held the stop lock
// shared across a blocking `inbox <- ev`. With a tiny inbox, an OnDeliver
// callback that re-broadcasts, and a concurrent Stop awaiting the
// exclusive lock, the node loop that had to drain the inbox was itself
// the sender parked inside the read lock — a permanent wedge. The fix
// never holds the lock across a blocking send (non-blocking fast path,
// shed goroutine for overflow, done-channel unpark at Stop), so this test
// must finish well inside its watchdog. Run it with -race.
func TestReentrantOnDeliverStopNoDeadlock(t *testing.T) {
	const iterations = 10
	for it := 0; it < iterations; it++ {
		finished := make(chan struct{})
		errc := make(chan error, 1)
		go func() {
			defer close(finished)
			var nwp atomic.Pointer[net.Network]
			nw, err := net.New(net.Config{
				N:            3,
				NewAutomaton: broadcast.NewSendToAll,
				InboxSize:    1, // force the overflow/shed path constantly
				OnDeliver: func(d net.Delivery) {
					// Reentrant amplification: every delivery triggers a
					// fresh broadcast (the growing payload caps the storm
					// far beyond what one test run reaches — Stop is what
					// ends it). This is exactly the callback shape that
					// wedged the old runtime: the node loop that must drain
					// the inbox is itself the sender parked on it.
					if len(d.Payload) < 60 {
						if n := nwp.Load(); n != nil {
							n.Broadcast(d.At, d.Payload+"x") //nolint:errcheck
						}
					}
				},
			})
			if err != nil {
				errc <- err
				return
			}
			nwp.Store(nw)
			for p := 1; p <= 3; p++ {
				if _, err := nw.Broadcast(model.ProcID(p), "s"); err != nil {
					errc <- err
					return
				}
			}
			// Let the storm saturate the 1-slot inboxes before stopping:
			// the old runtime wedges right here (nodes park on their own
			// full inboxes and delivery stalls for good).
			nw.WaitUntil(func() bool {
				var total int64
				for p := 1; p <= 3; p++ {
					total += nw.Delivered(model.ProcID(p))
				}
				return total >= 300
			}, 2*time.Second)
			// Stop races the still-running reentrant storm; both must
			// terminate (the old runtime's Stop blocked forever on the
			// write lock while a parked sender held it shared).
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				nw.Stop()
			}()
			wg.Wait()
			nw.Stop() // idempotent
		}()
		select {
		case <-finished:
			select {
			case err := <-errc:
				t.Fatalf("iteration %d: %v", it, err)
			default:
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("iteration %d: deadlock — Stop and reentrant OnDeliver wedged", it)
		}
	}
}

// TestConcurrentBroadcastersTinyInboxStop stresses the same fix from the
// outside: many goroutines broadcasting into 1-slot inboxes while Stop
// fires midway. Every Broadcast must return (possibly with a stopped
// error) and Stop must join everything.
func TestConcurrentBroadcastersTinyInboxStop(t *testing.T) {
	const n, senders, perSender = 4, 8, 50
	nw, err := net.New(net.Config{N: n, NewAutomaton: broadcast.NewReliable, InboxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				p := model.ProcID(s%n + 1)
				nw.Broadcast(p, model.Payload(fmt.Sprintf("m-%d-%d", s, i))) //nolint:errcheck
			}
		}(s)
	}
	stopDone := make(chan struct{})
	go func() {
		defer close(stopDone)
		time.Sleep(2 * time.Millisecond)
		nw.Stop()
	}()
	senderDone := make(chan struct{})
	go func() { defer close(senderDone); wg.Wait() }()
	for _, ch := range []chan struct{}{senderDone, stopDone} {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock: broadcasters or Stop wedged on a full inbox")
		}
	}
}

// TestReorderCounterPerLink is the regression test for the reorder
// accounting fix. The counter used to compare a global send ordinal, so
// two perfectly-FIFO senders interleaving at one receiver were miscounted
// as reorderings. With per-(sender,receiver) ordinals and zero delay
// (inline forwarding, per-link FIFO), two concurrent senders must count
// exactly zero reorderings.
func TestReorderCounterPerLink(t *testing.T) {
	const rounds = 200
	nw, err := net.New(net.Config{N: 3, NewAutomaton: broadcast.NewSendToAll, MaxDelay: 0})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, p := range []model.ProcID{1, 2} {
		wg.Add(1)
		go func(p model.ProcID) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := nw.Broadcast(p, model.Payload(fmt.Sprintf("r-%v-%d", p, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	want := int64(2 * rounds)
	ok := nw.WaitUntil(func() bool {
		for p := 1; p <= 3; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, waitTimeout)
	nw.Stop()
	if !ok {
		t.Fatalf("deliveries incomplete: %+v", nw.StatsSnapshot())
	}
	if got := nw.StatsSnapshot().Reordered; got != 0 {
		t.Errorf("Reordered = %d on a zero-delay run with FIFO senders, want 0 (global-ordinal bug?)", got)
	}
}
