package net

import (
	"errors"
	"testing"
	"time"

	"nobroadcast/internal/model"
)

func TestEgressReliableDefaults(t *testing.T) {
	e, err := NewEgress(nil, 3, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ds := e.Pass(1, 2)
		if len(ds) != 1 || ds[0] != 0 {
			t.Fatalf("reliable zero-delay egress returned %v", ds)
		}
	}
	st := e.Stats()
	if st.Sent != 100 || st.FaultDrops != 0 || st.FaultDups != 0 {
		t.Fatalf("stats = %+v, want 100 clean sends", st)
	}
}

func TestEgressDropAndDup(t *testing.T) {
	e, err := NewEgress(&FaultPlan{Drop: 0.5, Dup: 0.5}, 2, 42, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lost, dups int
	for i := 0; i < 1000; i++ {
		switch len(e.Pass(1, 2)) {
		case 0:
			lost++
		case 2:
			dups++
		}
	}
	if lost < 300 || lost > 700 {
		t.Errorf("0.5 drop lost %d/1000", lost)
	}
	if dups < 100 {
		t.Errorf("0.5 dup duplicated %d/1000", dups)
	}
	st := e.Stats()
	if st.FaultDrops != int64(lost) || st.FaultDups != int64(dups) {
		t.Errorf("stats %+v disagree with observed lost=%d dups=%d", st, lost, dups)
	}
}

func TestEgressPartitionCutsAndHeals(t *testing.T) {
	e, err := NewEgress(&FaultPlan{Partitions: []Partition{{
		A: []model.ProcID{1}, B: []model.ProcID{2},
		Start: 0, Heal: 50 * time.Millisecond,
	}}}, 2, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds := e.Pass(1, 2); len(ds) != 0 {
		t.Fatalf("active partition passed a message: %v", ds)
	}
	if ds := e.Pass(2, 1); len(ds) != 0 {
		t.Fatal("partitions cut both directions")
	}
	time.Sleep(60 * time.Millisecond)
	if ds := e.Pass(1, 2); len(ds) != 1 {
		t.Fatalf("healed link still cut: %v", ds)
	}
	if e.Stats().PartitionDrops != 2 {
		t.Errorf("PartitionDrops = %d, want 2", e.Stats().PartitionDrops)
	}
}

func TestEgressSeededDeterminism(t *testing.T) {
	mk := func() []int {
		e, err := NewEgress(&FaultPlan{Drop: 0.3, Dup: 0.3}, 2, 7, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int, 200)
		for i := range out {
			out[i] = len(e.Pass(1, 2))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at send %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEgressRejectsBadPlan(t *testing.T) {
	if _, err := NewEgress(&FaultPlan{Drop: 2}, 2, 1, 0, nil); err == nil {
		t.Fatal("NewEgress accepted drop probability 2")
	}
	var vErr error
	if vErr = (&FaultPlan{Links: map[Link]LinkFaults{{From: 1, To: 9}: {}}}).Validate(2); vErr == nil {
		t.Fatal("Validate accepted a link outside the system")
	}
	if errors.Is(vErr, nil) {
		t.Fatal("unreachable")
	}
}
