package net_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
)

const waitTimeout = 5 * time.Second

func oracleK(c broadcast.Candidate, k int) int {
	switch c.OracleK {
	case 0:
		return 1
	case -1:
		return k
	default:
		return c.OracleK
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := net.New(net.Config{N: 0}); err == nil {
		t.Error("expected error for N=0")
	}
	if _, err := net.New(net.Config{N: 2}); err == nil {
		t.Error("expected error for missing automaton")
	}
}

// TestAllCandidatesDeliverEverywhere: under the concurrent runtime, every
// candidate delivers every broadcast message at every live node.
func TestAllCandidatesDeliverEverywhere(t *testing.T) {
	const n, k, perNode = 4, 2, 3
	for _, c := range broadcast.AllCandidates() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			nw, err := net.New(net.Config{
				N:            n,
				NewAutomaton: c.NewAutomaton,
				K:            oracleK(c, k),
				Seed:         1,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Stop()
			for p := 1; p <= n; p++ {
				for j := 0; j < perNode; j++ {
					if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("m-%d-%d", p, j))); err != nil {
						t.Fatal(err)
					}
				}
			}
			want := int64(n * perNode)
			ok := nw.WaitUntil(func() bool {
				for p := 1; p <= n; p++ {
					if nw.Delivered(model.ProcID(p)) < want {
						return false
					}
				}
				return true
			}, waitTimeout)
			if !ok {
				for p := 1; p <= n; p++ {
					t.Logf("p%d delivered %d/%d", p, nw.Delivered(model.ProcID(p)), want)
				}
				t.Fatal("not all messages delivered everywhere")
			}
			// No over-delivery (BC-No-Duplication).
			time.Sleep(10 * time.Millisecond)
			for p := 1; p <= n; p++ {
				if got := nw.Delivered(model.ProcID(p)); got != want {
					t.Errorf("p%d delivered %d, want exactly %d", p, got, want)
				}
			}
		})
	}
}

// TestDeliveryContentsValid: deliveries carry the broadcast contents and
// origins (BC-Validity end to end).
func TestDeliveryContentsValid(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	nw, err := net.New(net.Config{
		N:            3,
		NewAutomaton: broadcast.NewReliable,
		OnDeliver: func(d net.Delivery) {
			mu.Lock()
			defer mu.Unlock()
			seen[fmt.Sprintf("%v|%v|%s", d.At, d.From, d.Payload)]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if _, err := nw.Broadcast(2, "hello"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == 3
	}, waitTimeout)
	if !ok {
		t.Fatalf("deliveries: %v", seen)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := 1; p <= 3; p++ {
		key := fmt.Sprintf("p%d|p2|hello", p)
		if seen[key] != 1 {
			t.Errorf("delivery %q seen %d times", key, seen[key])
		}
	}
}

// TestCrashDoesNotBlockOthers: with the reliable broadcast, a crashed node
// does not prevent the others from delivering.
func TestCrashDoesNotBlockOthers(t *testing.T) {
	nw, err := net.New(net.Config{N: 3, NewAutomaton: broadcast.NewReliable, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if err := nw.Crash(3); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(3, "x"); err == nil {
		t.Error("broadcast on crashed node should fail")
	}
	if _, err := nw.Broadcast(1, "a"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool {
		return nw.Delivered(1) >= 1 && nw.Delivered(2) >= 1
	}, waitTimeout)
	if !ok {
		t.Error("live nodes did not deliver")
	}
	if nw.Delivered(3) != 0 {
		t.Error("crashed node delivered")
	}
}

// TestWithDelays: deliveries survive reordering delays.
func TestWithDelays(t *testing.T) {
	nw, err := net.New(net.Config{
		N:            3,
		NewAutomaton: broadcast.NewFIFO,
		MaxDelay:     300 * time.Microsecond,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for j := 0; j < 5; j++ {
		if _, err := nw.Broadcast(1, model.Payload(fmt.Sprintf("f%d", j))); err != nil {
			t.Fatal(err)
		}
	}
	ok := nw.WaitUntil(func() bool {
		for p := 1; p <= 3; p++ {
			if nw.Delivered(model.ProcID(p)) < 5 {
				return false
			}
		}
		return true
	}, waitTimeout)
	if !ok {
		t.Error("FIFO deliveries incomplete under delays")
	}
}

func TestStats(t *testing.T) {
	nw, err := net.New(net.Config{N: 2, NewAutomaton: broadcast.NewSendToAll})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if _, err := nw.Broadcast(1, "s"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool {
		s := nw.StatsSnapshot()
		return s.Delivered == 2 && s.Sent == 2 && s.Broadcasts == 1
	}, waitTimeout)
	if !ok {
		t.Errorf("stats: %+v", nw.StatsSnapshot())
	}
}

func TestStopIdempotentAndTerminal(t *testing.T) {
	nw, err := net.New(net.Config{N: 2, NewAutomaton: broadcast.NewSendToAll})
	if err != nil {
		t.Fatal(err)
	}
	nw.Stop()
	nw.Stop() // must not panic
	if _, err := nw.Broadcast(1, "late"); err == nil {
		t.Error("broadcast after stop should fail")
	}
}

func TestBroadcastValidation(t *testing.T) {
	nw, err := net.New(net.Config{N: 2, NewAutomaton: broadcast.NewSendToAll})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if _, err := nw.Broadcast(9, "x"); err == nil {
		t.Error("broadcast to unknown process should fail")
	}
	if err := nw.Crash(9); err == nil {
		t.Error("crash of unknown process should fail")
	}
	if nw.Delivered(9) != 0 {
		t.Error("unknown process delivered")
	}
}

// TestConcurrentBroadcasters: heavy concurrent load completes without
// loss; exercised with the race detector in CI.
func TestConcurrentBroadcasters(t *testing.T) {
	const n, perNode = 5, 10
	nw, err := net.New(net.Config{N: n, NewAutomaton: broadcast.NewReliable, MaxDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perNode; j++ {
				if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("c-%d-%d", p, j))); err != nil {
					t.Errorf("broadcast: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	want := int64(n * perNode)
	ok := nw.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, waitTimeout)
	if !ok {
		t.Fatal("concurrent load lost deliveries")
	}
}

// TestObsRegistryStats: with a Registry attached, the network's counters
// are registered under net.* names, the in-flight gauge drains to zero at
// Stop, and StatsSnapshot mirrors the registry values.
func TestObsRegistryStats(t *testing.T) {
	reg := obs.New()
	// MaxDelay > 0 forces the transit-goroutine path so the in-flight
	// gauge is exercised (zero delay forwards inline and never counts).
	nw, err := net.New(net.Config{N: 3, NewAutomaton: broadcast.NewSendToAll, Obs: reg, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "x"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool { return nw.StatsSnapshot().Delivered == 3 }, waitTimeout)
	nw.Stop()
	if !ok {
		t.Fatalf("deliveries incomplete: %+v", nw.StatsSnapshot())
	}
	s := nw.StatsSnapshot()
	if got := reg.Counter("net.sent").Value(); got != s.Sent {
		t.Errorf("registry net.sent = %d, snapshot %d", got, s.Sent)
	}
	if got := reg.Counter("net.delivered").Value(); got != 3 {
		t.Errorf("registry net.delivered = %d, want 3", got)
	}
	if g := reg.Gauge("net.in_flight"); g.Value() != 0 || g.Max() < 1 {
		t.Errorf("in-flight gauge = %d (max %d), want 0 with max >= 1", g.Value(), g.Max())
	}
}

// TestDroppedAndCrashCounters: messages addressed to a crashed process are
// counted as dropped, and crashes are counted once even when repeated.
func TestDroppedAndCrashCounters(t *testing.T) {
	nw, err := net.New(net.Config{N: 2, NewAutomaton: broadcast.NewSendToAll})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	if err := nw.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := nw.Crash(2); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "to-the-dead"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool {
		s := nw.StatsSnapshot()
		return s.Delivered >= 1 && s.Dropped >= 1
	}, waitTimeout)
	s := nw.StatsSnapshot()
	if !ok {
		t.Fatalf("expected at least one delivery and one drop: %+v", s)
	}
	if s.Crashes != 1 {
		t.Errorf("crashes = %d, want 1 (idempotent)", s.Crashes)
	}
}
