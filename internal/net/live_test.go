package net_test

import (
	"bytes"
	"fmt"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// TestLiveStreamingWithoutTrace: live specs without RecordTrace check the
// run in streaming mode — no step log is kept (Trace returns nil), yet the
// checkers observe every recorded step and produce verdicts.
func TestLiveStreamingWithoutTrace(t *testing.T) {
	const n, perNode = 3, 4
	c, err := broadcast.Lookup("fifo")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := net.New(net.Config{
		N:            n,
		NewAutomaton: c.NewAutomaton,
		K:            oracleK(c, 1),
		Seed:         7,
		LiveSpecs:    []spec.Spec{spec.BasicBroadcast(), spec.FIFOOrder()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for p := 1; p <= n; p++ {
		for j := 0; j < perNode; j++ {
			if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("m-%d-%d", p, j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := int64(n * perNode)
	done := nw.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, waitTimeout)
	if !done {
		t.Fatal("deliveries incomplete")
	}
	nw.Stop()

	if tr := nw.Trace(); tr != nil {
		t.Fatalf("streaming mode must not keep a step log, got %d steps", tr.X.Len())
	}
	if v, idx := nw.LiveViolation(); v != nil {
		t.Fatalf("clean run latched %v at step %d", v, idx)
	}
	if steps := nw.LiveSteps(); steps == 0 {
		t.Fatal("live checkers observed no steps")
	}
	verdicts := nw.FinishLive(true)
	if len(verdicts) != 2 {
		t.Fatalf("want 2 verdicts, got %d", len(verdicts))
	}
	for _, sv := range verdicts {
		if sv.Violation != nil {
			t.Errorf("%s violated on a clean run: %v", sv.Spec, sv.Violation)
		}
	}
	// FinishLive is idempotent.
	if again := nw.FinishLive(true); len(again) != len(verdicts) {
		t.Fatalf("FinishLive not idempotent: %d vs %d verdicts", len(again), len(verdicts))
	}
}

// TestLiveAgreesWithRecordedTrace: with both RecordTrace and live specs
// on, the live verdict equals a post-hoc batch check of the recorded
// trace — the recorder feeds the checkers the same linearization it
// records.
func TestLiveAgreesWithRecordedTrace(t *testing.T) {
	const n, perNode = 3, 3
	c, err := broadcast.Lookup("causal")
	if err != nil {
		t.Fatal(err)
	}
	sp := c.Spec(1)
	nw, err := net.New(net.Config{
		N:            n,
		NewAutomaton: c.NewAutomaton,
		K:            oracleK(c, 1),
		Seed:         3,
		RecordTrace:  true,
		LiveSpecs:    []spec.Spec{sp},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for p := 1; p <= n; p++ {
		for j := 0; j < perNode; j++ {
			if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("c-%d-%d", p, j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := int64(n * perNode)
	done := nw.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, waitTimeout)
	if !done {
		t.Fatal("deliveries incomplete")
	}
	nw.Stop()
	tr := nw.Trace()
	tr.Complete = true
	batch := sp.Check(tr)
	var live *spec.Violation
	for _, sv := range nw.FinishLive(true) {
		if sv.Spec == sp.Name() {
			live = sv.Violation
		}
	}
	if (batch == nil) != (live == nil) {
		t.Fatalf("live and batch verdicts diverge: live=%v batch=%v", live, batch)
	}
}

// TestSinkStreamingTee: a Sink alone (no RecordTrace, no LiveSpecs)
// enables the recorder in streaming mode: no step log is retained, yet
// the sink observes every recorded step under the recorder's
// linearization — here streamed straight into wire format v1.
func TestSinkStreamingTee(t *testing.T) {
	const n, perNode = 3, 4
	c, err := broadcast.Lookup("reliable")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw, err := trace.NewBinaryWriter(&buf, trace.StreamHeader{N: n, Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := net.New(net.Config{
		N:            n,
		NewAutomaton: c.NewAutomaton,
		K:            oracleK(c, 1),
		Seed:         11,
		Sink:         bw,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Stop()
	for p := 1; p <= n; p++ {
		for j := 0; j < perNode; j++ {
			if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("m-%d-%d", p, j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := int64(n * perNode)
	done := nw.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, waitTimeout)
	if !done {
		t.Fatal("deliveries incomplete")
	}
	nw.Stop()

	if tr := nw.Trace(); tr != nil {
		t.Fatalf("sink-only mode must not keep a step log, got %d steps", tr.X.Len())
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Len() != nw.LiveSteps() {
		t.Fatalf("sink stream has %d steps, recorder observed %d", got.X.Len(), nw.LiveSteps())
	}
	if got.X.Len() == 0 {
		t.Fatal("sink observed no steps")
	}
}
