package net

import (
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
)

// This file exports the sender-egress half of the fault machinery for
// transports that live outside this package. The in-process runtime
// applies a FaultPlan inside route(); the TCP transport (internal/nettcp)
// runs each CAMP node in its own process and needs the identical
// decision procedure — cut by active partition, drop, duplicate, delay —
// evaluated at the sender's egress before a frame touches a socket.

// Validate checks the plan against an n-process system; a nil plan is
// valid. It is the exported face of the constructor-time validation the
// in-process runtime performs.
func (fp *FaultPlan) Validate(n int) error { return fp.validate(n) }

// Egress evaluates a FaultPlan at one sender's egress. Each call to Pass
// decides the fate of one point-to-point transmission: severed links and
// drops return no copies, duplication returns two, and every copy
// carries its own transit delay drawn from the configured distribution.
// All randomness comes from the seeded generator, so a transport
// replaying the same send sequence sees the same faults. Safe for
// concurrent use.
type Egress struct {
	fs       *faultState
	rng      *safeRng
	met      *netMetrics
	start    time.Time
	maxDelay time.Duration
}

// NewEgress compiles plan for an n-process system. maxDelay bounds the
// default uniform transit delay (zero = no artificial delay), exactly
// like Config.MaxDelay on the in-process runtime. reg receives the
// net.* metrics (send/fault counters, delay histogram); nil keeps
// standalone counters readable via Stats.
func NewEgress(plan *FaultPlan, n int, seed uint64, maxDelay time.Duration, reg *obs.Registry) (*Egress, error) {
	if err := plan.validate(n); err != nil {
		return nil, err
	}
	return &Egress{
		fs:       compileFaults(plan),
		rng:      &safeRng{src: rng.New(seed)},
		met:      newNetMetrics(reg),
		start:    time.Now(),
		maxDelay: maxDelay,
	}, nil
}

// Pass decides one transmission from→to: the returned slice holds one
// transit delay per copy to put on the wire. Empty means the message is
// lost (an active partition severs the link, or the drop coin fired);
// two entries mean the duplication coin fired. Fault injections count
// under the same net.faults.* metrics the in-process runtime uses.
func (e *Egress) Pass(from, to model.ProcID) []time.Duration {
	e.met.sent.Inc()
	if e.fs.cut(from, to, time.Since(e.start), e.met) {
		return nil
	}
	drop, dup := e.fs.linkProbs(from, to)
	if drop > 0 && e.rng.float64() < drop {
		e.met.faultDropped.Inc()
		return nil
	}
	copies := 1
	if dup > 0 && e.rng.float64() < dup {
		copies = 2
		e.met.faultDuplicated.Inc()
	}
	out := make([]time.Duration, copies)
	for i := range out {
		d := e.delay()
		e.met.delayUS.Observe(d.Microseconds())
		out[i] = d
	}
	return out
}

// delay draws one transit delay from the plan's distribution override,
// or uniform [0, maxDelay).
func (e *Egress) delay() time.Duration {
	if d := e.fs.delayDist(); d != nil {
		return d.sample(e.rng)
	}
	return e.rng.uniform(e.maxDelay)
}

// Stats returns the egress's counter snapshot (sends and the fault
// counters; the delivery-side counters stay zero — they belong to the
// transport).
func (e *Egress) Stats() StatsSnapshot {
	return StatsSnapshot{
		Sent:           e.met.sent.Value(),
		FaultDrops:     e.met.faultDropped.Value(),
		FaultDups:      e.met.faultDuplicated.Value(),
		PartitionDrops: e.met.faultPartitionDropped.Value(),
	}
}
