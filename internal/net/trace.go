package net

import (
	"sync"

	"nobroadcast/internal/model"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// recorder captures the broadcast-interface steps of a concurrent run into
// an Execution, so the same specification checkers that judge the
// deterministic runtime's traces can judge this runtime's. Node goroutines
// append under a mutex; the resulting order is a real-time linearization
// (an invocation is always recorded before any delivery it causes), which
// is exactly the positional "previously" the safety specs rely on.
//
// With live specs configured, each recorded step is additionally fed —
// still under the mutex, so the checkers see the same linearization that
// is (or would be) recorded — to a spec.Monitor of incremental checkers.
// In streaming mode (live specs without Config.RecordTrace) x stays nil:
// the run is checked with only checker state resident, no step log.
//
// Only the events the specifications inspect are recorded: B-invocations,
// B-returns, B-deliveries, k-SA propositions and decisions, and crashes.
// Point-to-point sends and receives are not (the channel-level specs are
// the deterministic runtime's domain).
type recorder struct {
	mu sync.Mutex
	// buf holds the kept step log in chunked blocks — node goroutines
	// append under the mutex, and chunked growth keeps the critical
	// section free of realloc-and-copy pauses on long runs. keep is false
	// in streaming-only mode (no step log retained).
	buf     model.StepBuffer
	keep    bool
	n       int
	mon     *spec.Monitor // nil without live specs
	sink    trace.Sink    // nil without a streaming tee
	steps   int
	liveV   *spec.Violation
	liveIdx int
}

func newRecorder(n int, keep bool, specs []spec.Spec, sink trace.Sink) *recorder {
	r := &recorder{liveIdx: -1, keep: keep, n: n, sink: sink}
	if len(specs) > 0 {
		r.mon = spec.NewMonitor(n, specs...)
	}
	return r
}

// record appends one step and feeds the live checkers; a nil recorder is
// a no-op, so call sites stay unconditional.
func (r *recorder) record(s model.Step) {
	if r == nil {
		return
	}
	r.mu.Lock()
	idx := r.steps
	r.steps++
	if r.keep {
		r.buf.Append(s)
	}
	if r.mon != nil {
		if v := r.mon.Feed(s); v != nil && r.liveV == nil {
			r.liveV = v
			r.liveIdx = idx
		}
	}
	if r.sink != nil {
		r.sink.Step(s)
	}
	r.mu.Unlock()
}

// Trace returns a snapshot of the recorded execution, or nil when the
// network was built without Config.RecordTrace. Complete is left false:
// the network cannot know a run quiesced; callers that do (the conformance
// harness, after every delivery arrived) set it before checking liveness.
func (nw *Network) Trace() *trace.Trace {
	if nw.rec == nil || !nw.rec.keep {
		return nil
	}
	nw.rec.mu.Lock()
	defer nw.rec.mu.Unlock()
	return &trace.Trace{X: &model.Execution{N: nw.rec.n, Steps: nw.rec.buf.Steps()}}
}

// LiveViolation returns the first violation latched by the live checkers
// and the index of the step (in recorder order) that caused it; nil, -1
// when none, or when no live specs are configured.
func (nw *Network) LiveViolation() (*spec.Violation, int) {
	if nw.rec == nil {
		return nil, -1
	}
	nw.rec.mu.Lock()
	defer nw.rec.mu.Unlock()
	return nw.rec.liveV, nw.rec.liveIdx
}

// FinishLive evaluates the live checkers' end-of-trace (liveness) clauses
// and returns every monitored spec's latched verdict; complete reports
// whether the run quiesced (the recorder cannot know — the caller does).
// Nil without live specs. Idempotent; typically called after Stop.
func (nw *Network) FinishLive(complete bool) []spec.SpecVerdict {
	if nw.rec == nil || nw.rec.mon == nil {
		return nil
	}
	nw.rec.mu.Lock()
	defer nw.rec.mu.Unlock()
	mon := nw.rec.mon
	if v := mon.Finish(complete); v != nil && nw.rec.liveV == nil {
		nw.rec.liveV = v
	}
	return mon.Verdicts()
}

// LiveSteps returns how many steps the recorder has observed (whether or
// not a step log is kept).
func (nw *Network) LiveSteps() int {
	if nw.rec == nil {
		return 0
	}
	nw.rec.mu.Lock()
	defer nw.rec.mu.Unlock()
	return nw.rec.steps
}
