package net

import (
	"sync"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// recorder captures the broadcast-interface steps of a concurrent run into
// an Execution, so the same specification checkers that judge the
// deterministic runtime's traces can judge this runtime's. Node goroutines
// append under a mutex; the resulting order is a real-time linearization
// (an invocation is always recorded before any delivery it causes), which
// is exactly the positional "previously" the safety specs rely on.
//
// Only the events the specifications inspect are recorded: B-invocations,
// B-returns, B-deliveries, k-SA propositions and decisions, and crashes.
// Point-to-point sends and receives are not (the channel-level specs are
// the deterministic runtime's domain).
type recorder struct {
	mu sync.Mutex
	x  *model.Execution
}

func newRecorder(n int) *recorder {
	return &recorder{x: model.NewExecution(n)}
}

// record appends one step; a nil recorder is a no-op, so call sites stay
// unconditional.
func (r *recorder) record(s model.Step) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.x.Append(s)
	r.mu.Unlock()
}

// Trace returns a snapshot of the recorded execution, or nil when the
// network was built without Config.RecordTrace. Complete is left false:
// the network cannot know a run quiesced; callers that do (the conformance
// harness, after every delivery arrived) set it before checking liveness.
func (nw *Network) Trace() *trace.Trace {
	if nw.rec == nil {
		return nil
	}
	nw.rec.mu.Lock()
	defer nw.rec.mu.Unlock()
	return &trace.Trace{X: nw.rec.x.Clone()}
}
