package net

import "nobroadcast/internal/obs"

// netMetrics is the network's instrumentation, built on internal/obs. The
// counters always exist — StatsSnapshot reports them with or without a
// Registry — but they live under registry names (and gain latency/depth
// histograms plus the in-flight gauge) when Config.Obs is set. This
// replaces the hand-rolled Stats struct the package used to carry.
type netMetrics struct {
	sent       *obs.Counter
	received   *obs.Counter
	delivered  *obs.Counter
	broadcasts *obs.Counter
	// dropped counts messages discarded because the network stopped, the
	// destination crashed, or the destination did not exist — the events
	// the old Stats never tracked.
	dropped *obs.Counter
	// reordered counts receptions that overtook an earlier send to the
	// same destination (non-FIFO transport made visible).
	reordered *obs.Counter
	// crashes counts Crash calls that took effect.
	crashes *obs.Counter
	// faultDropped, faultDuplicated, and faultPartitionDropped count the
	// FaultPlan's injections: probabilistic losses, duplications, and
	// messages cut by an active partition. Always live (StatsSnapshot
	// reports them), named net.faults.* in registry mode.
	faultDropped          *obs.Counter
	faultDuplicated       *obs.Counter
	faultPartitionDropped *obs.Counter
	// partitionsActive gauges the number of currently active partitions,
	// refreshed on every routed message while a fault plan is configured.
	partitionsActive *obs.Gauge
	// inFlight gauges message goroutines currently in transit (registry
	// mode only; nil-safe no-op otherwise).
	inFlight *obs.Gauge
	// delayUS observes the assigned per-message transit delay; handleUS
	// the automaton handler latency (registry mode only).
	delayUS  *obs.Histogram
	handleUS *obs.Histogram
}

func newNetMetrics(reg *obs.Registry) *netMetrics {
	if reg == nil {
		// Standalone counters keep StatsSnapshot alive with observability
		// disabled; gauge and histograms stay nil (no-op recorders).
		return &netMetrics{
			sent:                  obs.NewCounter(),
			received:              obs.NewCounter(),
			delivered:             obs.NewCounter(),
			broadcasts:            obs.NewCounter(),
			dropped:               obs.NewCounter(),
			reordered:             obs.NewCounter(),
			crashes:               obs.NewCounter(),
			faultDropped:          obs.NewCounter(),
			faultDuplicated:       obs.NewCounter(),
			faultPartitionDropped: obs.NewCounter(),
			partitionsActive:      obs.NewGauge(),
		}
	}
	return &netMetrics{
		sent:                  reg.Counter("net.sent"),
		received:              reg.Counter("net.received"),
		delivered:             reg.Counter("net.delivered"),
		broadcasts:            reg.Counter("net.broadcasts"),
		dropped:               reg.Counter("net.dropped"),
		reordered:             reg.Counter("net.reordered"),
		crashes:               reg.Counter("net.crashes"),
		faultDropped:          reg.Counter("net.faults.dropped"),
		faultDuplicated:       reg.Counter("net.faults.duplicated"),
		faultPartitionDropped: reg.Counter("net.faults.partition_dropped"),
		partitionsActive:      reg.Gauge("net.faults.partitions_active"),
		inFlight:              reg.Gauge("net.in_flight"),
		delayUS:               reg.Histogram("net.delay_us", obs.DefaultLatencyBuckets...),
		handleUS:              reg.Histogram("net.handle_us", obs.DefaultLatencyBuckets...),
	}
}
