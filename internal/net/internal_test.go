package net

import (
	"testing"
	"time"

	"nobroadcast/internal/rng"
)

// TestUniformLargeMax is the regression test for the delay-draw overflow:
// the old implementation computed Intn(int(max)), and int(max) truncates
// to 32 bits on 32-bit platforms — a MaxDelay above ~2.147s became a
// non-positive bound and panicked. The fix reduces a full Uint64 draw
// modulo the int64 nanosecond count, so a 5s bound must yield in-range
// values everywhere.
func TestUniformLargeMax(t *testing.T) {
	const max = 5 * time.Second
	s := &safeRng{src: rng.New(99)}
	for i := 0; i < 10_000; i++ {
		d := s.uniform(max)
		if d < 0 || d >= max {
			t.Fatalf("uniform(%v) = %v, out of [0, %v)", max, d, max)
		}
	}
	if s.uniform(0) != 0 || s.uniform(-time.Second) != 0 {
		t.Error("uniform of a non-positive bound should be 0")
	}
}

// TestDelaySampleProperties pins the distribution shapes: fixed returns
// its mean, exponential respects its clip, uniform respects its bound.
func TestDelaySampleProperties(t *testing.T) {
	s := &safeRng{src: rng.New(7)}
	fixed := &DelayDist{Kind: DelayFixed, Mean: 3 * time.Millisecond}
	for i := 0; i < 100; i++ {
		if d := fixed.sample(s); d != 3*time.Millisecond {
			t.Fatalf("fixed sample = %v, want 3ms", d)
		}
	}
	exp := &DelayDist{Kind: DelayExponential, Mean: time.Millisecond}
	clip := 10 * time.Millisecond // Max = 0 clips at 10×Mean
	for i := 0; i < 10_000; i++ {
		if d := exp.sample(s); d < 0 || d > clip {
			t.Fatalf("exponential sample = %v, out of [0, %v]", d, clip)
		}
	}
	uni := &DelayDist{Kind: DelayUniform, Max: 4 * time.Second}
	for i := 0; i < 10_000; i++ {
		if d := uni.sample(s); d < 0 || d >= 4*time.Second {
			t.Fatalf("uniform sample = %v, out of [0, 4s)", d)
		}
	}
}

// TestWaitUntilBackoffBounded is the regression test for WaitUntil's hot
// polling: the old loop re-checked the condition with no sleep floor
// growth, burning a core for the whole wait. With the exponential backoff
// (200µs doubling to a 5ms ceiling), an unsatisfied 1s wait costs at most
// ~210 condition checks (a handful of doubling steps, then 1s/5ms ticks);
// assert a generous bound well below the unbounded regime.
func TestWaitUntilBackoffBounded(t *testing.T) {
	nw := &Network{} // WaitUntil touches no Network state
	calls := 0
	start := time.Now()
	ok := nw.WaitUntil(func() bool { calls++; return false }, time.Second)
	elapsed := time.Since(start)
	if ok {
		t.Fatal("condition never holds, WaitUntil returned true")
	}
	if elapsed < time.Second {
		t.Fatalf("WaitUntil returned after %v, before the 1s timeout", elapsed)
	}
	if calls > 280 {
		t.Errorf("unsatisfied 1s wait polled %d times, want ≤ 280 (backoff missing?)", calls)
	}
	// A satisfied condition returns promptly on the first check.
	calls = 0
	if !nw.WaitUntil(func() bool { calls++; return true }, time.Second) {
		t.Fatal("satisfied condition reported false")
	}
	if calls != 1 {
		t.Errorf("satisfied condition checked %d times, want 1", calls)
	}
}
