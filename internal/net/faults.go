package net

import (
	"fmt"
	"math"
	"time"

	"nobroadcast/internal/model"
)

// This file defines the link-level fault-injection plan. The paper's model
// (Section 2) assumes complete, reliable, non-FIFO, asynchronous links; a
// FaultPlan makes each of those assumptions an explicit, injectable knob —
// message loss, duplication, alternative transit-delay distributions, and
// timed partitions — so experiments can measure which broadcast
// specifications survive which model violations. All randomness is drawn
// from the network's seeded generator, and every injected fault is counted
// under the net.faults.* metrics.

// Link identifies a directed link from one process to another.
type Link struct {
	From, To model.ProcID
}

// LinkFaults overrides the global drop/duplication probabilities for one
// directed link.
type LinkFaults struct {
	// Drop is the probability a message on this link is lost in transit.
	Drop float64
	// Dup is the probability a message on this link is duplicated.
	Dup float64
}

// DelayKind selects a transit-delay distribution.
type DelayKind int

// The delay distributions.
const (
	// DelayUniform draws uniformly from [0, Max). This is the default
	// distribution the network uses (with Max = Config.MaxDelay) when no
	// override is configured.
	DelayUniform DelayKind = iota
	// DelayExponential draws from an exponential distribution with the
	// given Mean, clipped to Max (Max = 0 clips at 10×Mean). Heavy-ish
	// tails surface reorderings a uniform delay rarely produces.
	DelayExponential
	// DelayFixed always returns Mean (a synchronous-looking special case).
	DelayFixed
)

// DelayDist describes a transit-delay distribution.
type DelayDist struct {
	Kind DelayKind
	// Mean is the exponential mean or the fixed value (ignored by
	// DelayUniform).
	Mean time.Duration
	// Max bounds the delay: the uniform upper bound, or the clip point of
	// the exponential (0 = 10×Mean).
	Max time.Duration
}

// sample draws one transit delay from the distribution.
func (d *DelayDist) sample(s *safeRng) time.Duration {
	switch d.Kind {
	case DelayFixed:
		return d.Mean
	case DelayExponential:
		clip := d.Max
		if clip <= 0 {
			clip = 10 * d.Mean
		}
		v := time.Duration(-math.Log(1-s.float64()) * float64(d.Mean))
		if v > clip {
			v = clip
		}
		return v
	default:
		return s.uniform(d.Max)
	}
}

func (d *DelayDist) validate() error {
	if d == nil {
		return nil
	}
	if d.Mean < 0 || d.Max < 0 {
		return fmt.Errorf("net: negative delay parameter (mean %v, max %v)", d.Mean, d.Max)
	}
	if d.Kind == DelayExponential && d.Mean <= 0 {
		return fmt.Errorf("net: exponential delay needs a positive mean")
	}
	return nil
}

// Partition is a timed set of link cuts: while active, every link between
// a process in A and a process in B (both directions) drops its messages.
// Activation and healing are measured from network start.
type Partition struct {
	// A and B are the two sides of the cut. Processes in neither side are
	// unaffected.
	A, B []model.ProcID
	// Start is when the cut activates (zero = from the beginning).
	Start time.Duration
	// Heal is when the cut heals; zero means it never does.
	Heal time.Duration
}

// FaultPlan configures link-level fault injection. The zero value (and a
// nil plan) injects nothing, reproducing the reliable network of the
// model. Probabilities are evaluated once per message transit with the
// network's seeded generator.
type FaultPlan struct {
	// Drop is the global per-transit loss probability.
	Drop float64
	// Dup is the global per-transit duplication probability.
	Dup float64
	// Delay, if set, replaces the uniform [0, MaxDelay) transit delay.
	Delay *DelayDist
	// Links overrides Drop/Dup per directed link.
	Links map[Link]LinkFaults
	// Partitions are timed link cuts.
	Partitions []Partition
}

func validProb(p float64) bool { return p >= 0 && p <= 1 && !math.IsNaN(p) }

// validate checks the plan against an n-process system. A nil plan is
// valid.
func (fp *FaultPlan) validate(n int) error {
	if fp == nil {
		return nil
	}
	if !validProb(fp.Drop) || !validProb(fp.Dup) {
		return fmt.Errorf("net: fault probabilities must be in [0,1] (drop %v, dup %v)", fp.Drop, fp.Dup)
	}
	if err := fp.Delay.validate(); err != nil {
		return err
	}
	inRange := func(p model.ProcID) bool { return p >= 1 && int(p) <= n }
	for l, lf := range fp.Links {
		if !inRange(l.From) || !inRange(l.To) {
			return fmt.Errorf("net: fault link %v->%v outside p1..p%d", l.From, l.To, n)
		}
		if !validProb(lf.Drop) || !validProb(lf.Dup) {
			return fmt.Errorf("net: link %v->%v fault probabilities must be in [0,1]", l.From, l.To)
		}
	}
	for i, p := range fp.Partitions {
		if len(p.A) == 0 || len(p.B) == 0 {
			return fmt.Errorf("net: partition %d has an empty side", i)
		}
		for _, id := range append(append([]model.ProcID{}, p.A...), p.B...) {
			if !inRange(id) {
				return fmt.Errorf("net: partition %d names %v outside p1..p%d", i, id, n)
			}
		}
		if p.Start < 0 || p.Heal < 0 {
			return fmt.Errorf("net: partition %d has negative timing", i)
		}
		if p.Heal != 0 && p.Heal <= p.Start {
			return fmt.Errorf("net: partition %d heals (%v) before it starts (%v)", i, p.Heal, p.Start)
		}
	}
	return nil
}

// compiledPartition precomputes the cut set of one partition.
type compiledPartition struct {
	cuts        map[Link]bool
	start, heal time.Duration
}

// faultState is the runtime form of a FaultPlan.
type faultState struct {
	plan  FaultPlan
	parts []compiledPartition
}

// compileFaults precomputes partition cut sets; a nil plan compiles to a
// nil state (all methods are nil-safe no-ops).
func compileFaults(fp *FaultPlan) *faultState {
	if fp == nil {
		return nil
	}
	fs := &faultState{plan: *fp}
	for _, p := range fp.Partitions {
		cp := compiledPartition{cuts: make(map[Link]bool), start: p.Start, heal: p.Heal}
		for _, a := range p.A {
			for _, b := range p.B {
				cp.cuts[Link{From: a, To: b}] = true
				cp.cuts[Link{From: b, To: a}] = true
			}
		}
		fs.parts = append(fs.parts, cp)
	}
	return fs
}

// cut reports whether the link from→to is severed by an active partition
// at the given elapsed time, counting the drop and refreshing the
// active-partition gauge.
func (fs *faultState) cut(from, to model.ProcID, elapsed time.Duration, met *netMetrics) bool {
	if fs == nil || len(fs.parts) == 0 {
		return false
	}
	active, severed := 0, false
	for _, p := range fs.parts {
		if elapsed < p.start || (p.heal > 0 && elapsed >= p.heal) {
			continue
		}
		active++
		if p.cuts[Link{From: from, To: to}] {
			severed = true
		}
	}
	met.partitionsActive.Set(int64(active))
	if severed {
		met.faultPartitionDropped.Inc()
	}
	return severed
}

// linkProbs returns the drop/duplication probabilities of the link,
// honoring per-link overrides.
func (fs *faultState) linkProbs(from, to model.ProcID) (drop, dup float64) {
	if fs == nil {
		return 0, 0
	}
	if lf, ok := fs.plan.Links[Link{From: from, To: to}]; ok {
		return lf.Drop, lf.Dup
	}
	return fs.plan.Drop, fs.plan.Dup
}

// delayDist returns the configured delay override, or nil.
func (fs *faultState) delayDist() *DelayDist {
	if fs == nil {
		return nil
	}
	return fs.plan.Delay
}
