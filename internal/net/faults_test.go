package net_test

import (
	"strings"
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
)

// TestFaultPlanValidation: invalid plans are rejected at New.
func TestFaultPlanValidation(t *testing.T) {
	base := func() net.Config {
		return net.Config{N: 3, NewAutomaton: broadcast.NewSendToAll}
	}
	cases := []struct {
		name string
		plan *net.FaultPlan
		want string
	}{
		{"drop-over-one", &net.FaultPlan{Drop: 1.5}, "probabilities"},
		{"negative-dup", &net.FaultPlan{Dup: -0.1}, "probabilities"},
		{"link-out-of-range", &net.FaultPlan{Links: map[net.Link]net.LinkFaults{{From: 1, To: 9}: {Drop: 0.5}}}, "outside"},
		{"exp-zero-mean", &net.FaultPlan{Delay: &net.DelayDist{Kind: net.DelayExponential}}, "positive mean"},
		{"partition-empty-side", &net.FaultPlan{Partitions: []net.Partition{{A: []model.ProcID{1}}}}, "empty side"},
		{"partition-bad-proc", &net.FaultPlan{Partitions: []net.Partition{{A: []model.ProcID{1}, B: []model.ProcID{7}}}}, "outside"},
		{"partition-heal-before-start", &net.FaultPlan{Partitions: []net.Partition{{A: []model.ProcID{1}, B: []model.ProcID{2}, Start: time.Second, Heal: time.Millisecond}}}, "heals"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			cfg.Faults = tc.plan
			if _, err := net.New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New(%s) error = %v, want containing %q", tc.name, err, tc.want)
			}
		})
	}
	// The zero-value plan injects nothing and is valid.
	cfg := base()
	cfg.Faults = &net.FaultPlan{}
	nw, err := net.New(cfg)
	if err != nil {
		t.Fatalf("zero-value plan rejected: %v", err)
	}
	nw.Stop()
}

// TestDropAllLosesEverything: with Drop = 1 every transit is lost, so
// send-to-all delivers nothing and every loss is counted.
func TestDropAllLosesEverything(t *testing.T) {
	nw, err := net.New(net.Config{
		N: 3, NewAutomaton: broadcast.NewSendToAll, Seed: 1,
		Faults: &net.FaultPlan{Drop: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "doomed"); err != nil {
		t.Fatal(err)
	}
	nw.WaitUntil(func() bool { return nw.StatsSnapshot().FaultDrops >= 3 }, waitTimeout)
	nw.Stop()
	s := nw.StatsSnapshot()
	if s.Delivered != 0 {
		t.Errorf("Delivered = %d under total loss, want 0", s.Delivered)
	}
	if s.FaultDrops != s.Sent || s.Sent == 0 {
		t.Errorf("FaultDrops = %d, Sent = %d; want every send counted lost", s.FaultDrops, s.Sent)
	}
}

// TestDupAllDoublesReceptions: with Dup = 1 every transit is duplicated;
// each process receives two copies per broadcast, while send-to-all's
// BC-No-Duplication dedup keeps deliveries at one per process.
func TestDupAllDoublesReceptions(t *testing.T) {
	nw, err := net.New(net.Config{
		N: 3, NewAutomaton: broadcast.NewSendToAll, Seed: 1,
		Faults: &net.FaultPlan{Dup: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "twice"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool { return nw.StatsSnapshot().Received == 6 }, waitTimeout)
	nw.Stop()
	s := nw.StatsSnapshot()
	if !ok {
		t.Fatalf("Received = %d, want 6 (each of 3 sends duplicated)", s.Received)
	}
	if s.FaultDups != 3 {
		t.Errorf("FaultDups = %d, want 3", s.FaultDups)
	}
	if s.Delivered != 3 {
		t.Errorf("Delivered = %d, want 3 (BC-No-Duplication masks the copies)", s.Delivered)
	}
}

// TestReliableSurvivesDuplication: reliable broadcast's echo/dedup layer
// must mask duplication — exactly one delivery per process despite Dup=1.
func TestReliableSurvivesDuplication(t *testing.T) {
	nw, err := net.New(net.Config{
		N: 3, NewAutomaton: broadcast.NewReliable, Seed: 1,
		Faults: &net.FaultPlan{Dup: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "once"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool {
		for p := 1; p <= 3; p++ {
			if nw.Delivered(model.ProcID(p)) < 1 {
				return false
			}
		}
		return true
	}, waitTimeout)
	// Give straggler duplicates a moment to land, then check no over-delivery.
	nw.WaitUntil(func() bool { return false }, 20*time.Millisecond)
	nw.Stop()
	if !ok {
		t.Fatalf("reliable lost deliveries under duplication: %+v", nw.StatsSnapshot())
	}
	for p := 1; p <= 3; p++ {
		if got := nw.Delivered(model.ProcID(p)); got != 1 {
			t.Errorf("process %d delivered %d times, want exactly 1", p, got)
		}
	}
	if s := nw.StatsSnapshot(); s.FaultDups == 0 {
		t.Error("FaultDups = 0, want > 0 (duplication was configured)")
	}
}

// TestPartitionCutsBothDirections: an unhealed partition {1}|{2,3} from
// the start severs every cross-side link; process 1's broadcast reaches
// only itself, and the cuts are counted.
func TestPartitionCutsBothDirections(t *testing.T) {
	nw, err := net.New(net.Config{
		N: 3, NewAutomaton: broadcast.NewSendToAll, Seed: 1,
		Faults: &net.FaultPlan{Partitions: []net.Partition{
			{A: []model.ProcID{1}, B: []model.ProcID{2, 3}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "isolated"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool { return nw.Delivered(1) == 1 }, waitTimeout)
	nw.Stop()
	if !ok {
		t.Fatalf("process 1's self-delivery missing: %+v", nw.StatsSnapshot())
	}
	s := nw.StatsSnapshot()
	if nw.Delivered(2) != 0 || nw.Delivered(3) != 0 {
		t.Errorf("deliveries crossed an active partition: p2=%d p3=%d", nw.Delivered(2), nw.Delivered(3))
	}
	if s.PartitionDrops != 2 {
		t.Errorf("PartitionDrops = %d, want 2 (1→2 and 1→3)", s.PartitionDrops)
	}
}

// TestPartitionHeals: after Heal elapses the cut links carry messages
// again.
func TestPartitionHeals(t *testing.T) {
	const heal = 30 * time.Millisecond
	nw, err := net.New(net.Config{
		N: 3, NewAutomaton: broadcast.NewSendToAll, Seed: 1,
		Faults: &net.FaultPlan{Partitions: []net.Partition{
			{A: []model.ProcID{1}, B: []model.ProcID{2, 3}, Start: 0, Heal: heal},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(heal + 20*time.Millisecond)
	if _, err := nw.Broadcast(1, "after-heal"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool { return nw.StatsSnapshot().Delivered == 3 }, waitTimeout)
	nw.Stop()
	if !ok {
		t.Fatalf("healed partition still dropping: %+v", nw.StatsSnapshot())
	}
}

// TestPerLinkOverride: a Links entry overrides the global probabilities
// for that directed link only — 1→2 loses everything while 1→3 is clean.
func TestPerLinkOverride(t *testing.T) {
	nw, err := net.New(net.Config{
		N: 3, NewAutomaton: broadcast.NewSendToAll, Seed: 1,
		Faults: &net.FaultPlan{
			Links: map[net.Link]net.LinkFaults{{From: 1, To: 2}: {Drop: 1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Broadcast(1, "selective"); err != nil {
		t.Fatal(err)
	}
	ok := nw.WaitUntil(func() bool { return nw.Delivered(1) == 1 && nw.Delivered(3) == 1 }, waitTimeout)
	nw.Stop()
	if !ok {
		t.Fatalf("clean links lost deliveries: %+v", nw.StatsSnapshot())
	}
	if got := nw.Delivered(2); got != 0 {
		t.Errorf("process 2 delivered %d via a fully lossy link, want 0", got)
	}
	if s := nw.StatsSnapshot(); s.FaultDrops != 1 {
		t.Errorf("FaultDrops = %d, want exactly 1 (only 1→2 is lossy)", s.FaultDrops)
	}
}

// TestDelayDistributions: the exponential and fixed overrides drive a
// working network (delivery still converges).
func TestDelayDistributions(t *testing.T) {
	for _, dist := range []net.DelayDist{
		{Kind: net.DelayExponential, Mean: 100 * time.Microsecond},
		{Kind: net.DelayFixed, Mean: 50 * time.Microsecond},
		{Kind: net.DelayUniform, Max: 200 * time.Microsecond},
	} {
		dist := dist
		nw, err := net.New(net.Config{
			N: 3, NewAutomaton: broadcast.NewReliable, Seed: 42,
			Faults: &net.FaultPlan{Delay: &dist},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Broadcast(2, "delayed"); err != nil {
			t.Fatal(err)
		}
		ok := nw.WaitUntil(func() bool {
			for p := 1; p <= 3; p++ {
				if nw.Delivered(model.ProcID(p)) < 1 {
					return false
				}
			}
			return true
		}, waitTimeout)
		nw.Stop()
		if !ok {
			t.Errorf("delay dist %+v: deliveries incomplete: %+v", dist, nw.StatsSnapshot())
		}
	}
}
