// SMR demonstrates the paper's Section 1.2 motivation: State Machine
// Replication is built on Total Order Broadcast, the abstraction that
// characterizes consensus [7, 21, 26]. Replicas of a key-value store apply
// commands in delivery order; with Total Order every replica converges to
// the same state, while weaker abstractions let replicas diverge — and the
// k-BO attempt bounds, but does not eliminate, the divergence.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
)

// replica is a key-value state machine fed by broadcast deliveries.
// Commands are "SET key value"; last delivered write wins.
type replica struct {
	id    model.ProcID
	store map[string]string
	// commands to issue, one per OnReturn (pipelined).
	queue []string
}

var _ sched.App = (*replica)(nil)

func (r *replica) Init(env sched.AppEnv, _ model.Value) {
	if len(r.queue) > 0 {
		cmd := r.queue[0]
		r.queue = r.queue[1:]
		env.Broadcast(model.Payload(cmd))
	}
}

func (r *replica) OnDeliver(env sched.AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload) {
	parts := strings.SplitN(string(payload), " ", 3)
	if len(parts) == 3 && parts[0] == "SET" {
		r.store[parts[1]] = parts[2]
	}
}

func (r *replica) OnReturn(env sched.AppEnv, _ model.MsgID) {
	if len(r.queue) > 0 {
		cmd := r.queue[0]
		r.queue = r.queue[1:]
		env.Broadcast(model.Payload(cmd))
	}
}

// fingerprint renders the store deterministically.
func (r *replica) fingerprint() string {
	keys := make([]string, 0, len(r.store))
	for k := range r.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s;", k, r.store[k])
	}
	return b.String()
}

// runSMR replicates the same conflicting workload over the named broadcast
// abstraction across seeds and reports how many distinct final states the
// replicas reach.
func runSMR(name string, n, k int, seeds int) (distinctStates map[int]int, err error) {
	cand, err := broadcast.Lookup(name)
	if err != nil {
		return nil, err
	}
	distinctStates = make(map[int]int)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		replicas := make([]*replica, n)
		rt, err := sched.New(sched.Config{
			N:            n,
			NewAutomaton: cand.NewAutomaton,
			Oracle:       cand.OracleFor(k),
			NewApp: func(id model.ProcID) sched.App {
				// Every replica writes the SAME contended keys with its
				// own values: application order decides the final state.
				r := &replica{id: id, store: make(map[string]string)}
				for j := 0; j < 3; j++ {
					r.queue = append(r.queue, fmt.Sprintf("SET key%d from-p%d", j, id))
				}
				replicas[id-1] = r
				return r
			},
		})
		if err != nil {
			return nil, err
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed})
		if err != nil {
			return nil, err
		}
		if !tr.Complete {
			return nil, fmt.Errorf("%s seed %d: run incomplete", name, seed)
		}
		if v := spec.BasicBroadcast().Check(tr); v != nil {
			return nil, fmt.Errorf("%s seed %d: %s", name, seed, v)
		}
		states := make(map[string]bool)
		for _, r := range replicas {
			states[r.fingerprint()] = true
		}
		distinctStates[len(states)]++
	}
	return distinctStates, nil
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("smr: %v", err)
	}
}

func run() error {
	const n, k, seeds = 4, 2, 40
	fmt.Printf("State machine replication: %d replicas, 3 conflicting writes each,\n", n)
	fmt.Printf("%d seeded schedules per abstraction. Distinct final states per run:\n\n", seeds)
	for _, name := range []string{"total-order", "kbo", "send-to-all"} {
		hist, err := runSMR(name, n, k, seeds)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s:", name)
		for d := 1; d <= n; d++ {
			if c, ok := hist[d]; ok {
				fmt.Printf("  %d state(s) x%d", d, c)
			}
		}
		fmt.Println()
		switch name {
		case "total-order":
			if len(hist) != 1 || hist[1] != seeds {
				return fmt.Errorf("total order must yield exactly one state per run: %v", hist)
			}
			fmt.Println("              -> consensus power: replicas always converge (Section 1.2's SMR)")
		case "kbo":
			fmt.Println("              -> per-round k-SA bounds, but does not eliminate, divergence")
		case "send-to-all":
			fmt.Println("              -> no ordering: replicas apply writes in arbitrary orders")
		}
	}
	fmt.Println()
	fmt.Println("This is the paper's Section 1.2 in running code: SMR needs Total Order")
	fmt.Println("Broadcast, Total Order Broadcast is consensus [7] — and, by Theorem 1,")
	fmt.Println("nothing like it exists for k-set agreement when 1 < k < n.")
	return nil
}
