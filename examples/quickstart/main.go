// Quickstart: run a crash-tolerant reliable broadcast over the concurrent
// runtime — five processes, real goroutines, an asynchronous reordering
// network, and one crash — and watch every live process deliver every
// message exactly once.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("quickstart: %v", err)
	}
}

func run() error {
	const n = 5

	var mu sync.Mutex
	deliveries := make(map[model.ProcID][]string)

	nw, err := net.New(net.Config{
		N:            n,
		NewAutomaton: broadcast.NewReliable, // echo-based reliable broadcast [13]
		MaxDelay:     300 * time.Microsecond,
		Seed:         42,
		OnDeliver: func(d net.Delivery) {
			mu.Lock()
			defer mu.Unlock()
			deliveries[d.At] = append(deliveries[d.At], string(d.Payload))
		},
	})
	if err != nil {
		return err
	}
	defer nw.Stop()

	// p5 crashes before doing anything; the paper's model tolerates up to
	// n-1 crashes (t = n-1, wait-free).
	if err := nw.Crash(5); err != nil {
		return err
	}

	// Every live process broadcasts two messages.
	for p := 1; p <= 4; p++ {
		for j := 1; j <= 2; j++ {
			if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("hello-%d.%d", p, j))); err != nil {
				return err
			}
		}
	}

	// Await delivery of all 8 messages at the 4 live processes.
	ok := nw.WaitUntil(func() bool {
		for p := 1; p <= 4; p++ {
			if nw.Delivered(model.ProcID(p)) < 8 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		return fmt.Errorf("timed out waiting for deliveries")
	}

	mu.Lock()
	defer mu.Unlock()
	for p := 1; p <= n; p++ {
		got := append([]string(nil), deliveries[model.ProcID(p)]...)
		sort.Strings(got)
		fmt.Printf("p%d delivered %d message(s): %v\n", p, len(got), got)
	}
	st := nw.StatsSnapshot()
	fmt.Printf("network totals: %d broadcasts, %d sends, %d deliveries\n", st.Broadcasts, st.Sent, st.Delivered)
	fmt.Println("note: crashed p5 delivered nothing, yet all correct processes agree —")
	fmt.Println("that is BC-Global-CS-Termination plus the echo-based agreement of [13].")
	return nil
}
