// Sharedmemory demonstrates the contrast of Section 1.3 and the paper's
// conclusion: with shared memory, k-set agreement gains the companion
// abstractions it lacks in message passing. Concretely, k-SA and
// k-simultaneous consensus (k-SC) are equivalent in the crash-prone
// asynchronous read/write model [1] — and that equivalence fails in
// message passing [6], which is the root of the paper's negative result.
//
// The example runs the k-SC-from-k-SA construction (one k-SA object,
// atomic SWMR registers, double-collect snapshots) under many adversarial
// schedules and crash patterns, checks the k-SC properties each time, and
// then derives k-SA back from k-SC.
package main

import (
	"fmt"
	"log"
	"os"

	"nobroadcast/internal/model"
	"nobroadcast/internal/sharedmem"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("sharedmemory: %v", err)
	}
}

func run() error {
	const n, k = 5, 3

	inputs := make([]sharedmem.Value, n)
	for i := range inputs {
		inputs[i] = sharedmem.Value(fmt.Sprintf("value-of-p%d", i+1))
	}

	fmt.Printf("CARW_%d[%d-SA]: registers + snapshots + one %d-SA object\n\n", n, k, k)

	// Direction 1: k-SA (+ snapshots) implements k-SC.
	fmt.Println("k-SA -> k-SC (construction of [1]): 50 adversarial schedules")
	for seed := uint64(1); seed <= 50; seed++ {
		outs, err := sharedmem.RunKSC(k, inputs, sharedmem.RunOptions{Seed: seed})
		if err != nil {
			return err
		}
		if err := sharedmem.CheckKSC(k, inputs, outs); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		if seed == 1 {
			for _, o := range outs {
				fmt.Printf("  %v -> (index %d, value %q)\n", o.Proc, o.Index, o.Val)
			}
		}
	}
	fmt.Println("  all schedules: index range, index agreement, validity — ok")
	fmt.Println()

	// Same, with crashes (wait-freedom).
	fmt.Println("same, with 2 crashes injected mid-run:")
	outs, err := sharedmem.RunKSC(k, inputs, sharedmem.RunOptions{
		Seed:    7,
		CrashAt: map[int]model.ProcID{3: 2, 11: 5},
	})
	if err != nil {
		return err
	}
	if err := sharedmem.CheckKSC(k, inputs, outs); err != nil {
		return err
	}
	for _, o := range outs {
		fmt.Printf("  %v -> (index %d, value %q)\n", o.Proc, o.Index, o.Val)
	}
	fmt.Println("  survivors still satisfy k-SC — the construction is wait-free")
	fmt.Println()

	// Direction 2: k-SC implements k-SA (decide the value component).
	fmt.Println("k-SC -> k-SA (decide the value component): 50 adversarial schedules")
	for seed := uint64(1); seed <= 50; seed++ {
		decs, err := sharedmem.RunKSAFromKSC(k, inputs, sharedmem.RunOptions{Seed: seed})
		if err != nil {
			return err
		}
		if err := sharedmem.CheckKSA(k, inputs, decs); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	fmt.Println("  all schedules: at most", k, "distinct decisions, validity — ok")
	fmt.Println()
	fmt.Println("Contrast: in message passing, k-SC is strictly harder than k-SA [6],")
	fmt.Println("shared memory cannot be emulated with t = n-1 crashes, and — by the")
	fmt.Println("paper's Theorem 1 — no content-neutral compositional broadcast")
	fmt.Println("abstraction can fill the gap for 1 < k < n.")
	return nil
}
