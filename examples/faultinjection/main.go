// Fault injection: the paper's communication model (Section 2) assumes
// complete, reliable, asynchronous links. This example deliberately breaks
// the reliability assumption with a seeded net.FaultPlan — 10% per-transit
// message loss throughout, plus a partition isolating p1 for the first
// 50ms — and shows exactly which guarantees of echo-based reliable
// broadcast [13] survive which violation:
//
//   - Independent probabilistic loss is masked: every message broadcast
//     over a connected network still reaches every process, because each
//     message travels as n-1 independent echo copies (EXPERIMENTS.md E17).
//   - A partition is not: the echo re-diffusion is one-shot, so a message
//     whose entire echo window falls inside the cut is gone for the
//     isolated side even after the partition heals — during the cut, p1 is
//     indistinguishable from a crashed process.
//
// Every injected fault stays observable in the net.faults.* counters;
// losses are the experiment's measurement, never silent.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("faultinjection: %v", err)
	}
}

func run() error {
	const (
		n    = 5
		heal = 50 * time.Millisecond
	)
	nw, err := net.New(net.Config{
		N:            n,
		NewAutomaton: broadcast.NewReliable,
		MaxDelay:     300 * time.Microsecond,
		Seed:         7, // faults are seeded: rerun for the identical loss pattern
		Faults: &net.FaultPlan{
			Drop: 0.10, // 10% of transits vanish, for the whole run
			Partitions: []net.Partition{
				{A: []model.ProcID{1}, B: []model.ProcID{2, 3, 4, 5}, Heal: heal},
			},
		},
	})
	if err != nil {
		return err
	}
	defer nw.Stop()

	// Phase 1 — the partition is active: p2 broadcasts. The connected side
	// {p2..p5} converges despite the 10% loss; p1 hears nothing.
	if _, err := nw.Broadcast(2, "during-partition"); err != nil {
		return err
	}
	ok := nw.WaitUntil(func() bool {
		for p := 2; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < 1 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		return fmt.Errorf("connected side failed to converge during the partition")
	}
	fmt.Printf("during the cut:  p1 delivered %d, p2..p5 delivered 1 each — loss is masked, the partition is not\n",
		nw.Delivered(1))

	// Phase 2 — wait out the heal, then p3 broadcasts. Now every process,
	// p1 included, delivers: the echoes travel after the heal, and the 10%
	// loss is again masked by their redundancy.
	time.Sleep(heal + 20*time.Millisecond)
	if _, err := nw.Broadcast(3, "after-heal"); err != nil {
		return err
	}
	ok = nw.WaitUntil(func() bool {
		if nw.Delivered(1) < 1 {
			return false
		}
		for p := 2; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < 2 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	if !ok {
		return fmt.Errorf("deliveries incomplete after the partition healed: %+v", nw.StatsSnapshot())
	}

	st := nw.StatsSnapshot()
	fmt.Printf("after the heal:  p1 delivered %d, p2..p5 delivered 2 each\n", nw.Delivered(1))
	fmt.Printf("injected faults: %d transits dropped (p=0.1), %d cut by the partition\n",
		st.FaultDrops, st.PartitionDrops)
	fmt.Println("the during-partition message never reaches p1 — its one-shot echo window")
	fmt.Println("fell entirely inside the cut, so for that message p1 might as well have")
	fmt.Println("crashed; the after-heal message reaches everyone through echo redundancy.")
	return nil
}
