// Impossibility walks through the full Theorem 1 pipeline on the k-BO
// broadcast candidate, narrating each stage of the paper's proof as it
// executes: solo runs, the adversarial N-solo construction (Algorithm 1 /
// Lemma 10), the restriction and renaming of Lemma 9, and the final
// k-SA-Agreement contradiction.
package main

import (
	"fmt"
	"log"
	"os"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/core"
	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("impossibility: %v", err)
	}
}

func run() error {
	const k = 2

	cand, err := broadcast.Lookup("kbo")
	if err != nil {
		return err
	}
	fmt.Printf("Candidate: %s — %s\n", cand.Name, cand.Describe)
	fmt.Printf("Claim under test: a content-neutral, compositional broadcast abstraction\n")
	fmt.Printf("computationally equivalent to %d-set agreement in CAMP_%d[0].\n\n", k, k+1)

	res, err := core.RunImpossibility(cand, k, core.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("Stage 1 — solo executions alpha_i (everyone else crashes at the start):\n")
	for _, rec := range res.Solo {
		fmt.Printf("  %v proposes %q, B-delivers %d message(s), decides %q\n",
			rec.Proc, rec.Input, rec.Ni, rec.Decision)
	}
	fmt.Printf("Stage 2 — N = max(1, N_1..N_%d) = %d\n\n", k+1, res.N)

	fmt.Printf("Stage 3 — Algorithm 1 builds alpha_{k,N,B,B}; mechanical Lemma checks:\n")
	for _, rep := range res.LemmaReports {
		status := "ok"
		if !rep.OK {
			status = "FAILED " + rep.Err
		}
		fmt.Printf("  %-55s %s\n", rep.Lemma, status)
	}
	fmt.Println()

	highlight := make(map[model.MsgID]bool)
	for _, ms := range res.Adversary.Counted {
		for _, m := range ms {
			highlight[m] = true
		}
	}
	fmt.Println("beta (the N-solo execution of Lemma 10):")
	fmt.Print(trace.RenderDeliverySummary(res.Beta, highlight))
	fmt.Println()

	fmt.Println("Stage 5 — gamma: beta restricted to the counted messages (compositionality):")
	fmt.Print(trace.RenderDeliverySummary(res.Gamma, highlight))
	fmt.Println()

	fmt.Println("Stage 6 — delta: gamma with each counted message renamed to the matching")
	fmt.Println("solo-run message (content-neutrality):")
	fmt.Print(trace.RenderDeliverySummary(res.Delta, nil))
	fmt.Println()

	fmt.Printf("Stage 7 — replay of the solver on delta (indistinguishable from alpha_i):\n")
	for p := 1; p <= k+1; p++ {
		fmt.Printf("  %v decides %q\n", model.ProcID(p), res.ReplayDecisions[model.ProcID(p)])
	}
	fmt.Println()
	fmt.Printf("Outcome: %v\n", res.Outcome)
	fmt.Printf("Detail:  %s\n\n", res.Detail)
	fmt.Println("This is the reductio of Theorem 1: IF the k-BO specification were")
	fmt.Println("implementable in CAMP_n[k-SA] AND solved k-SA in CAMP_n[k-BO], its")
	fmt.Println("compositionality and content-neutrality would force k+1 distinct")
	fmt.Println("decisions on one k-SA object. Hence no such equivalence exists — and,")
	fmt.Println("as a corollary, k-BO broadcast cannot be implemented on top of k-SA in")
	fmt.Println("message-passing systems (Section 1.3).")
	return nil
}
