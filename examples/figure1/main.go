// Figure1 regenerates Figure 1 of the paper: the adversarial execution
// α_{k,N,B,𝓑} for k = 3 and N = 2, produced by running Algorithm 1
// against a concrete broadcast implementation in CAMP_4[3-SA].
//
// The figure's ingredients all appear in the output:
//
//   - plain sends/receives are the low-level arrows (shown in the
//     delivery summary and decision table);
//   - B-broadcasts and B-deliveries are the dotted arrows (the space-time
//     diagram);
//   - the white squares with decided values are the k-SA propositions
//     (the decision table);
//   - the grey boxes around the final N messages of each process are the
//     starred (counted) messages — "incompatible with an implementation
//     of k-set agreement", which Lemma 9's substitution argument then
//     exploits.
package main

import (
	"fmt"
	"log"
	"os"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("figure1: %v", err)
	}
}

func run() error {
	const k, n = 3, 2

	cand, err := broadcast.Lookup("first-k")
	if err != nil {
		return err
	}
	res, err := adversary.Run(adversary.Options{K: k, N: n, NewAutomaton: cand.NewAutomaton})
	if err != nil {
		return err
	}

	fmt.Printf("Figure 1 — adversarial execution alpha for k=%d, N=%d over %q\n\n", k, n, cand.Name)

	// Mechanically re-establish Lemmas 1-8 and 10 on this very run.
	reports, ok := res.Verify()
	for _, rep := range reports {
		status := "ok"
		if !rep.OK {
			status = "FAILED: " + rep.Err
		}
		fmt.Printf("  %-55s %s\n", rep.Lemma, status)
	}
	if !ok {
		return fmt.Errorf("lemma verification failed")
	}
	fmt.Println()

	highlight := make(map[model.MsgID]bool)
	for _, ms := range res.Counted {
		for _, m := range ms {
			highlight[m] = true
		}
	}
	fmt.Println("Space-time diagram of beta (time flows left to right; * marks the")
	fmt.Println("counted messages — the grey boxes of the paper's figure):")
	fmt.Println()
	fmt.Print(trace.RenderDiagram(res.Beta, trace.DiagramOptions{Highlight: highlight, HideReturns: true}))
	fmt.Println()
	fmt.Print(trace.RenderDeliverySummary(res.Beta, highlight))
	fmt.Println()
	fmt.Println("k-SA objects used by the implementation (the white squares):")
	fmt.Print(trace.RenderDecisionTable(res.Alpha))
	fmt.Println()
	fmt.Printf("beta is %d-solo (Definition 5): every process B-delivers its %d counted\n", n, n)
	fmt.Printf("messages before any counted message of any other process — the exact\n")
	fmt.Printf("structure Lemma 9 turns into a k-SA-Agreement violation.\n")
	return nil
}
