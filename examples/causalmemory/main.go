// Causalmemory demonstrates the paper's Section 1.1 motivation: causal
// broadcast is the communication abstraction behind causal memory [2, 24].
// A writer publishes x=1; a reactive process that SEES x=1 responds by
// publishing y=2; causal order guarantees no process ever observes y=2
// without x=1 already applied. Over plain send-to-all broadcast the same
// scenario breaks on many schedules — the example counts the anomalies.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// memNode is a causal-memory node: it applies delivered writes to a local
// store, and its application logic reacts to the value of x.
type memNode struct {
	id    model.ProcID
	store map[string]string
	// role: p1 writes x=1; p2 writes y=2 after seeing x=1; p3 observes.
	wroteY bool
	// anomaly records an observation of y=2 without x=1.
	anomaly *bool
}

var _ sched.App = (*memNode)(nil)

func (m *memNode) Init(env sched.AppEnv, _ model.Value) {
	if m.id == 1 {
		env.Broadcast("WRITE x 1")
	}
}

func (m *memNode) OnDeliver(env sched.AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload) {
	parts := strings.SplitN(string(payload), " ", 3)
	if len(parts) != 3 || parts[0] != "WRITE" {
		return
	}
	m.store[parts[1]] = parts[2]
	// Causal-consistency observation: y=2 causally depends on x=1.
	if parts[1] == "y" && m.store["x"] != "1" {
		*m.anomaly = true
	}
	// p2's application logic: respond to x=1 by writing y=2.
	if m.id == 2 && parts[1] == "x" && parts[2] == "1" && !m.wroteY {
		m.wroteY = true
		env.Broadcast("WRITE y 2")
	}
}

func (m *memNode) OnReturn(sched.AppEnv, model.MsgID) {}

// runScenario runs the write-read-write chain over the named abstraction
// for many seeds and returns how many runs showed the causal anomaly.
func runScenario(name string, seeds int) (anomalies int, err error) {
	cand, err := broadcast.Lookup(name)
	if err != nil {
		return 0, err
	}
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		anomaly := false
		rt, err := sched.New(sched.Config{
			N:            3,
			NewAutomaton: cand.NewAutomaton,
			NewApp: func(id model.ProcID) sched.App {
				return &memNode{id: id, store: make(map[string]string), anomaly: &anomaly}
			},
		})
		if err != nil {
			return 0, err
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed})
		if err != nil {
			return 0, err
		}
		if !tr.Complete {
			return 0, fmt.Errorf("%s seed %d: incomplete", name, seed)
		}
		if anomaly {
			anomalies++
		}
	}
	return anomalies, nil
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("causalmemory: %v", err)
	}
}

func run() error {
	const seeds = 200
	fmt.Println("Causal memory (Section 1.1, [2]): p1 writes x=1; p2, upon seeing")
	fmt.Println("x=1, writes y=2; nobody may observe y=2 without x=1.")
	fmt.Println()
	for _, name := range []string{"causal", "fifo", "send-to-all"} {
		anomalies, err := runScenario(name, seeds)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s: %3d/%d runs with a causal anomaly\n", name, anomalies, seeds)
		if name == "causal" && anomalies > 0 {
			return fmt.Errorf("causal broadcast let a causal anomaly through")
		}
	}
	fmt.Println()
	fmt.Println("Causal broadcast (vector-clock gating) eliminates the anomaly by")
	fmt.Println("construction; FIFO only orders per-sender (x and y have different")
	fmt.Println("writers), and send-to-all orders nothing — both show anomalies under")
	fmt.Println("adversarial schedules. This is the 'relativistic notion of time' end")
	fmt.Println("of the spectrum the paper's conclusion describes, implementable with")
	fmt.Println("plain send/receive — unlike anything equivalent to k-SA.")
	return nil
}
