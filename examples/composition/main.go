// Composition demonstrates the modularity argument of Section 3.2: a
// broadcast abstraction is a system-wide service shared by independent
// applications, so each application only sees a subset of the system's
// messages — and an ordering property that is not compositional
// (Definition 2) silently evaporates for the sub-applications.
//
// Two applications share one broadcast service:
//
//   - a "coordination" application, whose messages are the ones an
//     iterated k-SA algorithm would exchange; and
//   - a "chat" application, which only needs reliable delivery.
//
// Over the k-Stepped Broadcast strawman, the full execution satisfies the
// k-stepped ordering property, but its restriction onto either
// application's messages need not — the example searches seeded schedules
// for a witness and prints it. Over the causal broadcast, the same
// workload passes every restriction: causal order is compositional, so
// each application keeps the guarantee.
package main

import (
	"fmt"
	"log"
	"os"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.SetOutput(os.Stderr)
		log.Fatalf("composition: %v", err)
	}
}

// workload interleaves the two applications' broadcasts on two processes.
func workload() []sched.BroadcastReq {
	var reqs []sched.BroadcastReq
	for p := 1; p <= 2; p++ {
		for j := 1; j <= 2; j++ {
			reqs = append(reqs,
				sched.BroadcastReq{Proc: model.ProcID(p), Payload: model.Payload(fmt.Sprintf("ksa:round%d-p%d", j, p))},
				sched.BroadcastReq{Proc: model.ProcID(p), Payload: model.Payload(fmt.Sprintf("chat:msg%d-p%d", j, p))},
			)
		}
	}
	return reqs
}

func runOnce(c broadcast.Candidate, k int, seed uint64) (*trace.Trace, error) {
	rt, err := sched.New(sched.Config{N: 2, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(k)})
	if err != nil {
		return nil, err
	}
	return rt.RunRandom(sched.RunOptions{Seed: seed, Broadcasts: workload()})
}

func investigate(name string, k int) error {
	c, err := broadcast.Lookup(name)
	if err != nil {
		return err
	}
	s := c.Spec(k)
	fmt.Printf("-- %s (spec %s) --\n", c.Name, s.Name())
	for seed := uint64(1); seed <= 64; seed++ {
		tr, err := runOnce(c, k, seed)
		if err != nil {
			return err
		}
		if !tr.Complete {
			continue
		}
		if v := s.Check(tr); v != nil {
			return fmt.Errorf("%s violated its own spec on the FULL execution (seed %d): %s", c.Name, seed, v)
		}
		rep, err := spec.CheckCompositional(s, tr, spec.SymmetryOptions{Seed: seed})
		if err != nil {
			return err
		}
		if !rep.Holds {
			fmt.Printf("seed %d: full execution admitted, but the restriction to messages %v is NOT:\n", seed, rep.WitnessSubset)
			fmt.Printf("  %s\n", rep.Violation)
			fmt.Printf("  => an application using only that message subset loses the ordering guarantee.\n\n")
			return nil
		}
	}
	fmt.Printf("all 64 seeded schedules: every restriction of every execution stayed admissible.\n")
	fmt.Printf("  => composition-safe on this workload (and provably so: the spec is compositional).\n\n")
	return nil
}

func run() error {
	const k = 1 // 1-stepped, the paper's own counterexample setting

	fmt.Println("Two applications (ksa:* and chat:*) share one broadcast service.")
	fmt.Println("Does each application keep the service's ordering property on its")
	fmt.Println("own message subset?")
	fmt.Println()

	if err := investigate("k-stepped", k); err != nil {
		return err
	}
	if err := investigate("causal", k); err != nil {
		return err
	}

	// Whatever the seeded search found, the paper's hand counterexample is
	// definitive: reproduce it verbatim (Section 3.2).
	fmt.Println("-- the paper's own counterexample (Section 3.2), verbatim --")
	x := model.NewExecution(2)
	add := func(p model.ProcID, kind model.StepKind, m model.MsgID, pl model.Payload, peer model.ProcID) {
		x.Append(model.Step{Proc: p, Kind: kind, Msg: m, Payload: pl, Peer: peer})
	}
	// p1 broadcasts m1 then m1'; p2 broadcasts m2 then m2'.
	add(1, model.KindBroadcastInvoke, 1, "m1", 0)
	add(1, model.KindBroadcastReturn, 1, "m1", 0)
	add(1, model.KindBroadcastInvoke, 2, "m1'", 0)
	add(1, model.KindBroadcastReturn, 2, "m1'", 0)
	add(2, model.KindBroadcastInvoke, 3, "m2", 0)
	add(2, model.KindBroadcastReturn, 3, "m2", 0)
	add(2, model.KindBroadcastInvoke, 4, "m2'", 0)
	add(2, model.KindBroadcastReturn, 4, "m2'", 0)
	// p1 delivers [m1, m1', m2, m2']; p2 delivers [m1, m2, m1', m2'].
	for _, d := range []struct {
		p model.ProcID
		m model.MsgID
	}{{1, 1}, {1, 2}, {1, 3}, {1, 4}, {2, 1}, {2, 3}, {2, 2}, {2, 4}} {
		add(d.p, model.KindDeliver, d.m, x.PayloadOf(d.m), x.Broadcaster(d.m))
	}
	tr := trace.New(x)
	s := spec.KSteppedOrder(1)
	if v := s.Check(tr); v != nil {
		return fmt.Errorf("the paper's trace should satisfy the 1-stepped predicate: %s", v)
	}
	fmt.Println("full execution: admitted by the 1-stepped predicate")
	restricted := trace.New(x.Restrict(map[model.MsgID]bool{2: true, 3: true}))
	if v := s.Check(restricted); v != nil {
		fmt.Printf("restriction to {m1', m2}: %s\n", v)
		fmt.Println("=> exactly the paper's conclusion: k-Stepped Broadcast is not compositional.")
		return nil
	}
	return fmt.Errorf("the paper's restriction should violate the predicate")
}
