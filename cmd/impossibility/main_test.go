package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestImpossibilityAll(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-all", "-k", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	wants := []string{
		"== first-k (k=2",
		"not compositional",
		"== sa-tagged (k=2",
		"not content-neutral",
		"== kbo (k=2",
		"Theorem 1 contradiction",
		"Theorem 1: for 1 < k < n",
	}
	for _, w := range wants {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestImpossibilitySingleVerbose(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "kbo", "-k", "2", "-v"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "solo p1") || !strings.Contains(s, "replay decisions on delta") {
		t.Errorf("verbose output incomplete:\n%s", s)
	}
}

// TestImpossibilityKRangeSweep: "-k 2..3 -workers 4" fans the candidate ×
// k grid out on the worker pool; the report blocks come back in grid order
// (candidate-major, k ascending) and parallel output is identical to the
// serial run.
func TestImpossibilityKRangeSweep(t *testing.T) {
	var parallel, serial bytes.Buffer
	if err := cmdRun([]string{"-all", "-k", "2..3", "-workers", "4"}, &parallel); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cmdRun([]string{"-all", "-k", "2..3", "-workers", "1"}, &serial); err != nil {
		t.Fatalf("run: %v", err)
	}
	if parallel.String() != serial.String() {
		t.Error("parallel sweep output differs from serial run")
	}
	s := parallel.String()
	for _, w := range []string{"== kbo (k=2", "== kbo (k=3"} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q", w)
		}
	}
	// Grid order: all of first-k's blocks (k=2 then k=3) precede kbo's.
	i2, i3 := strings.Index(s, "== first-k (k=2"), strings.Index(s, "== first-k (k=3")
	j2 := strings.Index(s, "== kbo (k=2")
	if i2 < 0 || i3 < 0 || j2 < 0 || !(i2 < i3 && i3 < j2) {
		t.Errorf("blocks not in candidate-major grid order: first-k@%d,%d kbo@%d", i2, i3, j2)
	}
}

func TestImpossibilityBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun(nil, &out); err == nil {
		t.Error("expected usage error")
	}
	if err := cmdRun([]string{"-b", "nope"}, &out); err == nil {
		t.Error("expected unknown-candidate error")
	}
	if err := cmdRun([]string{"-b", "kbo", "-k", "1"}, &out); err == nil {
		t.Error("expected k=1 error")
	}
}

func TestImpossibilityMetricsAndEvents(t *testing.T) {
	events := filepath.Join(t.TempDir(), "out.jsonl")
	var out bytes.Buffer
	if err := cmdRun([]string{"-all", "-k", "2", "-metrics", "-events", events}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"-- spans",
		"pipeline.adversary",
		"pipeline.nsolo-check",
		"pipeline.restriction",
		"pipeline.renaming",
		"pipeline.replay",
		"-- counters",
		"core.pipelines",
		"sched.steps",
		"adversary.oracle.proposals",
		"events written to",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("metrics output missing %q:\n%s", w, s)
		}
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatalf("reading event log: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("expected a rich event log, got %d lines", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if m["ts"] == nil || m["event"] == nil {
			t.Fatalf("line %d lacks ts/event: %s", i+1, line)
		}
	}
}

// TestRunExitCodes: run maps the command body to process exit codes, and
// the deferred sink flush means a failing invocation still finalizes its
// -events log.
func TestRunExitCodes(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-b", "nope"}, &out, &errw); code != 1 {
		t.Errorf("unknown candidate: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "impossibility:") {
		t.Errorf("stderr missing prefix:\n%s", errw.String())
	}
	if code := run([]string{"-b", "kbo", "-k", "1"}, &out, &errw); code != 1 {
		t.Errorf("k=1: exit %d, want 1", code)
	}
	if code := run([]string{"-b", "kbo", "-k", "2..100000000"}, &out, &errw); code != 1 {
		t.Errorf("unbounded k range: exit %d, want 1", code)
	}
}
