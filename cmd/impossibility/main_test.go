package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestImpossibilityAll(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-all", "-k", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	wants := []string{
		"== first-k (k=2",
		"not compositional",
		"== sa-tagged (k=2",
		"not content-neutral",
		"== kbo (k=2",
		"Theorem 1 contradiction",
		"Theorem 1: for 1 < k < n",
	}
	for _, w := range wants {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestImpossibilitySingleVerbose(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "kbo", "-k", "2", "-v"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "solo p1") || !strings.Contains(s, "replay decisions on delta") {
		t.Errorf("verbose output incomplete:\n%s", s)
	}
}

func TestImpossibilityBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("expected usage error")
	}
	if err := run([]string{"-b", "nope"}, &out); err == nil {
		t.Error("expected unknown-candidate error")
	}
	if err := run([]string{"-b", "kbo", "-k", "1"}, &out); err == nil {
		t.Error("expected k=1 error")
	}
}
