// Command impossibility runs the Theorem 1 pipeline (internal/core) on one
// or all candidate broadcast abstractions and prints, for each, which
// hypothesis of the claimed k-SA equivalence fails — the executable form
// of the paper's main result.
//
// Usage:
//
//	impossibility [-b kbo | -all] [-k 2] [-v] [-metrics] [-events out.jsonl]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/core"
	"nobroadcast/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "impossibility:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("impossibility", flag.ContinueOnError)
	name := fs.String("b", "", "candidate abstraction ("+strings.Join(broadcast.Names(), ", ")+")")
	all := fs.Bool("all", false, "run the pipeline on every k-SA-claiming candidate")
	k := fs.Int("k", 2, "agreement degree k, 1 < k")
	verbose := fs.Bool("v", false, "print solo records and lemma reports")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := oc.Registry()
	if err != nil {
		return err
	}
	var cands []broadcast.Candidate
	switch {
	case *all:
		for _, c := range broadcast.AllCandidates() {
			if c.SolvesKSA {
				cands = append(cands, c)
			}
		}
	case *name != "":
		c, err := broadcast.Lookup(*name)
		if err != nil {
			return err
		}
		cands = append(cands, c)
	default:
		return fmt.Errorf("pass -b <name> or -all")
	}

	for _, c := range cands {
		res, err := core.RunImpossibility(c, *k, core.Options{Obs: reg})
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		fmt.Fprintf(out, "== %s (k=%d, N=%d) ==\n", c.Name, res.K, res.N)
		fmt.Fprintf(out, "   %s\n", c.Describe)
		fmt.Fprintf(out, "   outcome: %v\n", res.Outcome)
		fmt.Fprintf(out, "   detail:  %s\n", res.Detail)
		if *verbose {
			for _, rec := range res.Solo {
				fmt.Fprintf(out, "   solo %v: input=%q decided=%q N_i=%d\n", rec.Proc, rec.Input, rec.Decision, rec.Ni)
			}
			for _, rep := range res.LemmaReports {
				status := "ok"
				if !rep.OK {
					status = "FAILED " + rep.Err
				}
				fmt.Fprintf(out, "   %-55s %s\n", rep.Lemma, status)
			}
			if res.ReplayDecisions != nil {
				fmt.Fprintf(out, "   replay decisions on delta: %v\n", res.ReplayDecisions)
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "Theorem 1: for 1 < k < n, no content-neutral and compositional broadcast")
	fmt.Fprintln(out, "abstraction is computationally equivalent to k-set agreement in CAMP_n[0].")
	fmt.Fprintln(out, "Each candidate above fails at least one hypothesis, as the outcomes show.")
	return oc.Finish(out)
}
