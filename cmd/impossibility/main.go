// Command impossibility runs the Theorem 1 pipeline (internal/core) on one
// or all candidate broadcast abstractions and prints, for each, which
// hypothesis of the claimed k-SA equivalence fails — the executable form
// of the paper's main result.
//
// The -k flag accepts a single degree ("-k 2") or an inclusive range
// ("-k 2..4"); with -all the candidate × k grid is swept on a bounded
// worker pool (-workers), each cell an independent pipeline run, with the
// output printed in grid order regardless of completion order.
//
// Usage:
//
//	impossibility [-b kbo | -all] [-k 2 | -k 2..4] [-workers 4] [-v] [-metrics] [-events out.jsonl]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/core"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run maps the command body to a process exit code. The body defers its
// observability flush, so a failing invocation still emits the -metrics
// summary and finalizes the -events log before the process exits.
func run(args []string, out, errw io.Writer) int {
	if err := cmdRun(args, out); err != nil {
		fmt.Fprintln(errw, "impossibility:", err)
		return 1
	}
	return 0
}

func cmdRun(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("impossibility", flag.ContinueOnError)
	name := fs.String("b", "", "candidate abstraction ("+strings.Join(broadcast.Names(), ", ")+")")
	all := fs.Bool("all", false, "run the pipeline on every k-SA-claiming candidate")
	kRange := fs.String("k", "2", "agreement degree k (1 < k), or inclusive range k1..k2")
	workers := fs.Int("workers", 0, "sweep worker bound; 0 means GOMAXPROCS")
	verbose := fs.Bool("v", false, "print solo records and lemma reports")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The sinks flush on every exit path — a failing run keeps its
	// telemetry instead of losing it to an early return.
	defer func() {
		if ferr := oc.Finish(out); err == nil {
			err = ferr
		}
	}()
	reg, err := oc.Registry()
	if err != nil {
		return err
	}
	kLo, kHi, err := sweep.ParseRange(*kRange)
	if err != nil {
		return err
	}
	if kLo < 2 {
		return fmt.Errorf("-k: Theorem 1 concerns 1 < k < n; got k=%d", kLo)
	}
	var cands []broadcast.Candidate
	switch {
	case *all:
		for _, c := range broadcast.AllCandidates() {
			if c.SolvesKSA {
				cands = append(cands, c)
			}
		}
	case *name != "":
		c, err := broadcast.Lookup(*name)
		if err != nil {
			return err
		}
		cands = append(cands, c)
	default:
		return fmt.Errorf("pass -b <name> or -all")
	}

	// Candidate-major, k-minor grid; each cell is one full pipeline run
	// rendered to its own buffer, so parallel cells never interleave
	// output and the printed order is the grid order.
	ks := sweep.Range(kLo, kHi)
	grid := sweep.Pairs(sweep.Range(0, len(cands)-1), ks)
	blocks, err := sweep.Run(context.Background(), len(grid),
		sweep.Options{Workers: *workers, Obs: reg},
		func(_ context.Context, cell sweep.Cell) (string, error) {
			p := grid[cell.Index]
			c := cands[p.A]
			var buf bytes.Buffer
			if err := renderPipeline(&buf, c, p.B, *verbose, reg); err != nil {
				return "", fmt.Errorf("%s (k=%d): %w", c.Name, p.B, err)
			}
			return buf.String(), nil
		})
	if err != nil {
		return err
	}
	for _, b := range blocks {
		fmt.Fprint(out, b)
	}
	fmt.Fprintln(out, "Theorem 1: for 1 < k < n, no content-neutral and compositional broadcast")
	fmt.Fprintln(out, "abstraction is computationally equivalent to k-set agreement in CAMP_n[0].")
	fmt.Fprintln(out, "Each candidate above fails at least one hypothesis, as the outcomes show.")
	return nil
}

// renderPipeline runs the Theorem 1 pipeline for one (candidate, k) cell
// and renders its report block.
func renderPipeline(out io.Writer, c broadcast.Candidate, k int, verbose bool, reg *obs.Registry) error {
	res, err := core.RunImpossibility(c, k, core.Options{Obs: reg})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "== %s (k=%d, N=%d) ==\n", c.Name, res.K, res.N)
	fmt.Fprintf(out, "   %s\n", c.Describe)
	fmt.Fprintf(out, "   outcome: %v\n", res.Outcome)
	fmt.Fprintf(out, "   detail:  %s\n", res.Detail)
	if verbose {
		for _, rec := range res.Solo {
			fmt.Fprintf(out, "   solo %v: input=%q decided=%q N_i=%d\n", rec.Proc, rec.Input, rec.Decision, rec.Ni)
		}
		for _, rep := range res.LemmaReports {
			status := "ok"
			if !rep.OK {
				status = "FAILED " + rep.Err
			}
			fmt.Fprintf(out, "   %-55s %s\n", rep.Lemma, status)
		}
		if res.ReplayDecisions != nil {
			fmt.Fprintf(out, "   replay decisions on delta: %v\n", res.ReplayDecisions)
		}
	}
	fmt.Fprintln(out)
	return nil
}
