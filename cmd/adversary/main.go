// Command adversary runs the paper's adversarial scheduler (Algorithm 1)
// against a chosen broadcast implementation in CAMP_{k+1}[k-SA], verifies
// Lemmas 1-8 and 10 mechanically on the produced execution, and renders
// the result — including the space-time diagram of Figure 1.
//
// Usage:
//
//	adversary [-b kbo] [-k 3] [-n 2] [-diagram] [-summary] [-json out.json] [-extend] [-metrics] [-events out.jsonl]
//
// With the defaults -b first-k -k 3 -n 2 and -diagram, the output is the
// reproduction of Figure 1 of the paper.
//
// Grid mode sweeps the construction over a (k, N) rectangle on a bounded
// worker pool, printing one summary row per cell in grid order:
//
//	adversary -b kbo -sweep 2..5 -N 1..4 [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/sweep"
	"nobroadcast/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run maps the command body to a process exit code. The body defers its
// observability flush, so a failing invocation still emits the -metrics
// summary and finalizes the -events log before the process exits.
func run(args []string, out, errw io.Writer) int {
	if err := cmdRun(args, out); err != nil {
		fmt.Fprintln(errw, "adversary:", err)
		return 1
	}
	return 0
}

func cmdRun(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	name := fs.String("b", "first-k", "broadcast implementation to drive ("+strings.Join(broadcast.Names(), ", ")+")")
	k := fs.Int("k", 3, "agreement degree k (the system has k+1 processes); k > 1")
	n := fs.Int("n", 2, "number N of solo self-deliveries to force per process")
	diagram := fs.Bool("diagram", true, "render the Figure 1 space-time diagram")
	summary := fs.Bool("summary", true, "render the per-process delivery summary")
	jsonPath := fs.String("json", "", "write the α trace as JSON to this file")
	dotPath := fs.String("dot", "", "write the Figure 1 diagram as Graphviz DOT to this file")
	extend := fs.Bool("extend", false, "extend the run fairly to quiescence and re-check the candidate's ordering spec (experiment E10)")
	live := fs.Bool("live", false, "report the verdicts the incremental checkers latched while Algorithm 1 ran")
	sweepK := fs.String("sweep", "", "grid mode: sweep k over this range (k1..k2 or a single k)")
	sweepN := fs.String("N", "", "grid mode: sweep N over this range (n1..n2); defaults to the -n value")
	workers := fs.Int("workers", 0, "grid mode: sweep worker bound; 0 means GOMAXPROCS")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The sinks flush on every exit path — a failing run keeps its
	// telemetry instead of losing it to an early return.
	defer func() {
		if ferr := oc.Finish(out); err == nil {
			err = ferr
		}
	}()
	reg, err := oc.Registry()
	if err != nil {
		return err
	}

	cand, err := broadcast.Lookup(*name)
	if err != nil {
		return err
	}

	if *sweepK != "" {
		return runGrid(out, cand, *sweepK, *sweepN, *n, *workers, reg)
	}
	if *sweepN != "" {
		return fmt.Errorf("-N is a grid-mode flag; pass -sweep as well (or use -n for a single run)")
	}
	res, err := adversary.Run(adversary.Options{K: *k, N: *n, NewAutomaton: cand.NewAutomaton, Obs: reg})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "adversarial_scheduler(k=%d, N=%d, B=%s): alpha has %d steps, beta %d broadcast events\n",
		*k, *n, cand.Name, res.Alpha.X.Len(), res.Beta.X.Len())
	fmt.Fprintf(out, "resets (line 25): %d   adoptions (line 18): %d\n\n", res.Resets, res.Adoptions)

	if *live && res.Live != nil {
		fmt.Fprintf(out, "live verdicts (checked incrementally during Algorithm 1, %d steps):\n", res.Live.Steps())
		for _, sv := range res.Live.Verdicts() {
			status := "ok"
			if sv.Violation != nil {
				status = fmt.Sprintf("VIOLATED at step %d: %s", sv.StepIdx, sv.Violation)
			}
			fmt.Fprintf(out, "  %-30s %s\n", sv.Spec, status)
		}
		fmt.Fprintln(out)
	}

	reports, ok := res.Verify()
	for _, rep := range reports {
		status := "ok"
		if !rep.OK {
			status = "FAILED: " + rep.Err
		}
		fmt.Fprintf(out, "  %-55s %s\n", rep.Lemma, status)
	}
	if !ok {
		return fmt.Errorf("lemma verification failed")
	}
	fmt.Fprintln(out)

	highlight := make(map[model.MsgID]bool)
	for _, ms := range res.Counted {
		for _, m := range ms {
			highlight[m] = true
		}
	}
	if *diagram {
		fmt.Fprintln(out, "Figure 1 — space-time diagram of beta (starred messages are the")
		fmt.Fprintln(out, "counted N-solo messages, the paper's grey boxes):")
		fmt.Fprintln(out)
		fmt.Fprint(out, trace.RenderDiagram(res.Beta, trace.DiagramOptions{Highlight: highlight, HideReturns: true}))
		fmt.Fprintln(out)
	}
	if *summary {
		fmt.Fprint(out, trace.RenderDeliverySummary(res.Beta, highlight))
		fmt.Fprintln(out)
		fmt.Fprint(out, trace.RenderDecisionTable(res.Alpha))
		fmt.Fprintln(out)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Alpha.EncodeJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "alpha written to %s\n", *jsonPath)
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(trace.RenderDOT(res.Beta, highlight)); err != nil {
			return err
		}
		fmt.Fprintf(out, "Figure 1 DOT written to %s (render: dot -Tsvg %s)\n", *dotPath, *dotPath)
	}

	if *extend {
		ext, err := res.Extend(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "extended run: %d steps, complete=%v\n", ext.X.Len(), ext.Complete)
		s := cand.Spec(*k)
		if v := s.Check(ext); v != nil {
			fmt.Fprintf(out, "ordering specification REFUTED on the completed run:\n  %s\n", v)
		} else {
			fmt.Fprintf(out, "ordering specification holds on the completed run\n")
		}
		if v := spec.BasicBroadcast().Check(ext); v != nil {
			fmt.Fprintf(out, "universal properties violated: %s\n", v)
		}
	}
	return nil
}

// gridRow is one cell's summary in grid mode.
type gridRow struct {
	k, n, steps, beta, resets, adoptions int
	lemmasOK                             bool
}

// runGrid sweeps the adversarial construction over the (k, N) rectangle on
// the sweep engine and prints one row per cell, k-major, in grid order.
func runGrid(out io.Writer, cand broadcast.Candidate, sweepK, sweepN string, defaultN, workers int, reg *obs.Registry) error {
	kLo, kHi, err := sweep.ParseRange(sweepK)
	if err != nil {
		return err
	}
	if kLo < 2 {
		return fmt.Errorf("-sweep: agreement degree k must be > 1, got %d", kLo)
	}
	nLo, nHi := defaultN, defaultN
	if sweepN != "" {
		if nLo, nHi, err = sweep.ParseRange(sweepN); err != nil {
			return err
		}
	}
	if nLo < 1 {
		return fmt.Errorf("-N: solo-delivery count must be >= 1, got %d", nLo)
	}
	if cells := (kHi - kLo + 1) * (nHi - nLo + 1); cells > sweep.DefaultMaxSpan {
		return fmt.Errorf("grid of %d cells exceeds the cap of %d; narrow -sweep/-N", cells, sweep.DefaultMaxSpan)
	}
	grid := sweep.Pairs(sweep.Range(kLo, kHi), sweep.Range(nLo, nHi))
	rows, err := sweep.Run(context.Background(), len(grid),
		sweep.Options{Workers: workers, Obs: reg},
		func(_ context.Context, cell sweep.Cell) (gridRow, error) {
			p := grid[cell.Index]
			res, err := adversary.Run(adversary.Options{K: p.A, N: p.B, NewAutomaton: cand.NewAutomaton, Obs: reg})
			if err != nil {
				return gridRow{}, fmt.Errorf("k=%d N=%d: %w", p.A, p.B, err)
			}
			_, ok := res.Verify()
			return gridRow{
				k: p.A, n: p.B, steps: res.Alpha.X.Len(), beta: res.Beta.X.Len(),
				resets: res.Resets, adoptions: res.Adoptions, lemmasOK: ok,
			}, nil
		})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "adversarial sweep: B=%s, k=%d..%d, N=%d..%d (%d cells)\n",
		cand.Name, kLo, kHi, nLo, nHi, len(grid))
	fmt.Fprintf(out, "%4s %4s %8s %8s %8s %10s %8s\n", "k", "N", "steps", "beta", "resets", "adoptions", "lemmas")
	for _, r := range rows {
		status := "ok"
		if !r.lemmasOK {
			status = "FAILED"
		}
		fmt.Fprintf(out, "%4d %4d %8d %8d %8d %10d %8s\n", r.k, r.n, r.steps, r.beta, r.resets, r.adoptions, status)
	}
	for _, r := range rows {
		if !r.lemmasOK {
			return fmt.Errorf("lemma verification failed in %d of %d cells", countFailed(rows), len(rows))
		}
	}
	return nil
}

func countFailed(rows []gridRow) int {
	n := 0
	for _, r := range rows {
		if !r.lemmasOK {
			n++
		}
	}
	return n
}
