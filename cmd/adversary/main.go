// Command adversary runs the paper's adversarial scheduler (Algorithm 1)
// against a chosen broadcast implementation in CAMP_{k+1}[k-SA], verifies
// Lemmas 1-8 and 10 mechanically on the produced execution, and renders
// the result — including the space-time diagram of Figure 1.
//
// Usage:
//
//	adversary [-b kbo] [-k 3] [-n 2] [-diagram] [-summary] [-json out.json] [-extend] [-metrics] [-events out.jsonl]
//
// With the defaults -b first-k -k 3 -n 2 and -diagram, the output is the
// reproduction of Figure 1 of the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adversary:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("adversary", flag.ContinueOnError)
	name := fs.String("b", "first-k", "broadcast implementation to drive ("+strings.Join(broadcast.Names(), ", ")+")")
	k := fs.Int("k", 3, "agreement degree k (the system has k+1 processes); k > 1")
	n := fs.Int("n", 2, "number N of solo self-deliveries to force per process")
	diagram := fs.Bool("diagram", true, "render the Figure 1 space-time diagram")
	summary := fs.Bool("summary", true, "render the per-process delivery summary")
	jsonPath := fs.String("json", "", "write the α trace as JSON to this file")
	dotPath := fs.String("dot", "", "write the Figure 1 diagram as Graphviz DOT to this file")
	extend := fs.Bool("extend", false, "extend the run fairly to quiescence and re-check the candidate's ordering spec (experiment E10)")
	live := fs.Bool("live", false, "report the verdicts the incremental checkers latched while Algorithm 1 ran")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, err := oc.Registry()
	if err != nil {
		return err
	}

	cand, err := broadcast.Lookup(*name)
	if err != nil {
		return err
	}
	res, err := adversary.Run(adversary.Options{K: *k, N: *n, NewAutomaton: cand.NewAutomaton, Obs: reg})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "adversarial_scheduler(k=%d, N=%d, B=%s): alpha has %d steps, beta %d broadcast events\n",
		*k, *n, cand.Name, res.Alpha.X.Len(), res.Beta.X.Len())
	fmt.Fprintf(out, "resets (line 25): %d   adoptions (line 18): %d\n\n", res.Resets, res.Adoptions)

	if *live && res.Live != nil {
		fmt.Fprintf(out, "live verdicts (checked incrementally during Algorithm 1, %d steps):\n", res.Live.Steps())
		for _, sv := range res.Live.Verdicts() {
			status := "ok"
			if sv.Violation != nil {
				status = fmt.Sprintf("VIOLATED at step %d: %s", sv.StepIdx, sv.Violation)
			}
			fmt.Fprintf(out, "  %-30s %s\n", sv.Spec, status)
		}
		fmt.Fprintln(out)
	}

	reports, ok := res.Verify()
	for _, rep := range reports {
		status := "ok"
		if !rep.OK {
			status = "FAILED: " + rep.Err
		}
		fmt.Fprintf(out, "  %-55s %s\n", rep.Lemma, status)
	}
	if !ok {
		return fmt.Errorf("lemma verification failed")
	}
	fmt.Fprintln(out)

	highlight := make(map[model.MsgID]bool)
	for _, ms := range res.Counted {
		for _, m := range ms {
			highlight[m] = true
		}
	}
	if *diagram {
		fmt.Fprintln(out, "Figure 1 — space-time diagram of beta (starred messages are the")
		fmt.Fprintln(out, "counted N-solo messages, the paper's grey boxes):")
		fmt.Fprintln(out)
		fmt.Fprint(out, trace.RenderDiagram(res.Beta, trace.DiagramOptions{Highlight: highlight, HideReturns: true}))
		fmt.Fprintln(out)
	}
	if *summary {
		fmt.Fprint(out, trace.RenderDeliverySummary(res.Beta, highlight))
		fmt.Fprintln(out)
		fmt.Fprint(out, trace.RenderDecisionTable(res.Alpha))
		fmt.Fprintln(out)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Alpha.EncodeJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "alpha written to %s\n", *jsonPath)
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.WriteString(trace.RenderDOT(res.Beta, highlight)); err != nil {
			return err
		}
		fmt.Fprintf(out, "Figure 1 DOT written to %s (render: dot -Tsvg %s)\n", *dotPath, *dotPath)
	}

	if *extend {
		ext, err := res.Extend(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "extended run: %d steps, complete=%v\n", ext.X.Len(), ext.Complete)
		s := cand.Spec(*k)
		if v := s.Check(ext); v != nil {
			fmt.Fprintf(out, "ordering specification REFUTED on the completed run:\n  %s\n", v)
		} else {
			fmt.Fprintf(out, "ordering specification holds on the completed run\n")
		}
		if v := spec.BasicBroadcast().Check(ext); v != nil {
			fmt.Fprintf(out, "universal properties violated: %s\n", v)
		}
	}
	return oc.Finish(out)
}
