package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultFigure1(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"adversarial_scheduler(k=3, N=2, B=first-k)",
		"Lemma 10 (beta is N-solo)",
		"Figure 1",
		"p4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("a lemma check failed:\n%s", s)
	}
}

func TestRunJSONAndExtend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alpha.json")
	var out bytes.Buffer
	err := run([]string{"-b", "kbo", "-k", "2", "-n", "1", "-diagram=false", "-summary=false", "-json", path, "-extend"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
	if !strings.Contains(out.String(), "ordering specification REFUTED") {
		t.Errorf("E10 refutation missing:\n%s", out.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "nope"}, &out); err == nil {
		t.Error("expected error for unknown candidate")
	}
	if err := run([]string{"-k", "1"}, &out); err == nil {
		t.Error("expected error for k=1")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunDOTExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.dot")
	var out bytes.Buffer
	if err := run([]string{"-k", "2", "-n", "1", "-diagram=false", "-summary=false", "-dot", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph execution") {
		t.Errorf("DOT file content:\n%s", data)
	}
}

func TestAdversaryMetrics(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "first-k", "-k", "3", "-n", "2", "-diagram=false", "-summary=false", "-metrics"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"adversary.phase.p1",
		"adversary.flush",
		"adversary.sync_broadcasts",
		"adversary.resets",
		"adversary.local_del",
		"adversary.phase_steps",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("metrics output missing %q:\n%s", w, s)
		}
	}
}
