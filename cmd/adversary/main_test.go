package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nobroadcast/internal/sweep"
)

func TestRunDefaultFigure1(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun(nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"adversarial_scheduler(k=3, N=2, B=first-k)",
		"Lemma 10 (beta is N-solo)",
		"Figure 1",
		"p4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("a lemma check failed:\n%s", s)
	}
}

func TestRunJSONAndExtend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alpha.json")
	var out bytes.Buffer
	err := cmdRun([]string{"-b", "kbo", "-k", "2", "-n", "1", "-diagram=false", "-summary=false", "-json", path, "-extend"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("trace file missing: %v", err)
	}
	if !strings.Contains(out.String(), "ordering specification REFUTED") {
		t.Errorf("E10 refutation missing:\n%s", out.String())
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "nope"}, &out); err == nil {
		t.Error("expected error for unknown candidate")
	}
	if err := cmdRun([]string{"-k", "1"}, &out); err == nil {
		t.Error("expected error for k=1")
	}
	if err := cmdRun([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunDOTExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.dot")
	var out bytes.Buffer
	if err := cmdRun([]string{"-k", "2", "-n", "1", "-diagram=false", "-summary=false", "-dot", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph execution") {
		t.Errorf("DOT file content:\n%s", data)
	}
}

func TestAdversaryMetrics(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "first-k", "-k", "3", "-n", "2", "-diagram=false", "-summary=false", "-metrics"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"adversary.phase.p1",
		"adversary.flush",
		"adversary.sync_broadcasts",
		"adversary.resets",
		"adversary.local_del",
		"adversary.phase_steps",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("metrics output missing %q:\n%s", w, s)
		}
	}
}

// TestRunGridMode: -sweep/-N produce one summary row per (k, N) cell in
// grid order, identical at any worker count, with lemma status per cell.
func TestRunGridMode(t *testing.T) {
	var parallel, serial bytes.Buffer
	args := []string{"-b", "kbo", "-sweep", "2..3", "-N", "1..2"}
	if err := cmdRun(append(args, "-workers", "4"), &parallel); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cmdRun(append(args, "-workers", "1"), &serial); err != nil {
		t.Fatalf("run: %v", err)
	}
	if parallel.String() != serial.String() {
		t.Errorf("grid output differs across worker counts:\n%s\nvs\n%s", parallel.String(), serial.String())
	}
	s := parallel.String()
	if !strings.Contains(s, "adversarial sweep: B=kbo, k=2..3, N=1..2 (4 cells)") {
		t.Errorf("missing sweep header:\n%s", s)
	}
	rows := 0
	for _, line := range strings.Split(s, "\n") {
		if strings.HasSuffix(strings.TrimSpace(line), " ok") {
			rows++
		}
	}
	if rows != 4 {
		t.Errorf("got %d ok rows, want 4:\n%s", rows, s)
	}
}

// TestRunGridModeBadArgs: malformed ranges and -N without -sweep are
// rejected.
func TestRunGridModeBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "kbo", "-sweep", "3..2"}, &out); err == nil {
		t.Error("expected error for descending -sweep range")
	}
	if err := cmdRun([]string{"-b", "kbo", "-sweep", "2..3", "-N", "x"}, &out); err == nil {
		t.Error("expected error for malformed -N range")
	}
	if err := cmdRun([]string{"-b", "kbo", "-N", "1..2"}, &out); err == nil {
		t.Error("expected error for -N without -sweep")
	}
}

// TestFailedRunStillEmitsMetrics: a failure after the construction (the
// -json export hitting a bad path) must not lose the telemetry recorded
// during Algorithm 1 — the deferred flush in cmdRun emits the summary on
// every exit path.
func TestFailedRunStillEmitsMetrics(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-k", "2", "-n", "1", "-diagram=false", "-summary=false",
		"-json", filepath.Join(t.TempDir(), "no-such-dir", "alpha.json"), "-metrics"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errw.String())
	}
	s := out.String()
	for _, w := range []string{"-- counters", "adversary.sync_broadcasts", "adversary.resets"} {
		if !strings.Contains(s, w) {
			t.Errorf("failed run lost its metrics summary (missing %q):\n%s", w, s)
		}
	}
}

// TestGridRejectsInvalidAxes: the cmd layer validates the k/N axes before
// any grid is allocated — k must exceed 1, N must be positive, and an
// unbounded span is rejected with the sweep package's structured cap
// error rather than attempting the allocation.
func TestGridRejectsInvalidAxes(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "kbo", "-sweep", "1..3"}, &out); err == nil {
		t.Error("expected rejection of k=1 axis")
	}
	if err := cmdRun([]string{"-b", "kbo", "-sweep", "2..3", "-N", "0..2"}, &out); err == nil {
		t.Error("expected rejection of N=0 axis")
	}
	if err := cmdRun([]string{"-b", "kbo", "-sweep", "-2..3"}, &out); err == nil {
		t.Error("expected rejection of negative axis")
	}
	err := cmdRun([]string{"-b", "kbo", "-sweep", "2..100000000"}, &out)
	var se *sweep.SpanError
	if !errors.As(err, &se) {
		t.Errorf("unbounded span error = %v, want *sweep.SpanError", err)
	}
}
