// Command ksasimd is the long-lived simulation daemon: an HTTP service
// (internal/serve) running workload simulations, adversary (Algorithm 1)
// constructions, and streaming trace checks as managed jobs, with
// determinism-keyed result caching and bounded admission.
//
// Usage:
//
//	ksasimd [-addr 127.0.0.1:8321] [-workers 4] [-queue 64] [-cache 128]
//	        [-job-timeout 60s] [-drain-timeout 30s] [-trace] [-pprof]
//	        [-metrics] [-events out.jsonl]
//	        [-coordinator http://w1:8321,http://w2:8321] [-steal 100ms]
//
// With -coordinator the daemon fans sweep-shaped jobs (/v1/explore,
// /v1/corpus) out to the listed worker daemons as cell-range shards
// (internal/fabric: work-stealing after -steal of straggling, retry with
// backoff, readiness-aware dispatch) and merges the results — the
// positional seed derivation makes the merged body byte-identical to a
// single-host run. Workers need no special configuration: every daemon
// already serves /v1/shards and the fleet cache.
//
// On SIGTERM or SIGINT the daemon drains gracefully: the listener closes,
// requests that would start new jobs get 503 (and /readyz flips to 503 so
// coordinators stop dispatching here, while /healthz stays 200), jobs
// already accepted run to completion (bounded by -drain-timeout), and the
// observability sinks flush before exit. A clean drain exits 0.
//
//	curl -s localhost:8321/healthz
//	curl -s -XPOST localhost:8321/v1/run -d '{"candidate":"fifo","n":4}'
//	curl -s -XPOST localhost:8321/v1/check?spec=fifo --data-binary @trace.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// splitWorkers parses the -coordinator flag: a comma-separated worker
// URL list, empty meaning a plain single daemon.
func splitWorkers(s string) []string {
	var urls []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}

// run maps the daemon body to a process exit code. The body defers its
// observability flush, so a daemon dying on an error still emits the
// -metrics summary and finalizes the -events log — a clean SIGTERM drain
// and a crashed listener alike leave their telemetry behind.
func run(args []string, out, errw io.Writer) int {
	if err := cmdRun(args, out); err != nil {
		fmt.Fprintln(errw, "ksasimd:", err)
		return 1
	}
	return 0
}

func cmdRun(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ksasimd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	workers := fs.Int("workers", 0, "jobs executing at once; 0 means GOMAXPROCS")
	queue := fs.Int("queue", 64, "admission queue depth beyond the workers (429 past it)")
	cacheN := fs.Int("cache", 128, "result cache entries (completed jobs with traces)")
	jobTimeout := fs.Duration("job-timeout", 60*time.Second, "server-side ceiling per job")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "SIGTERM drain budget for in-flight jobs")
	traceOn := fs.Bool("trace", false, "request-scoped tracing: per-request span trees in the -events sink, X-Trace-Id echo")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/ and runtime metrics at /debug/runtime")
	coordinator := fs.String("coordinator", "", "comma-separated worker daemon URLs; shard sweep jobs over them")
	steal := fs.Duration("steal", 100*time.Millisecond, "age at which a straggling shard is stolen and re-split; 0 disables")
	shardLag := fs.Duration("shard-lag", 0, "test hook: injected latency before every shard this worker executes")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The sinks flush on every exit path — a failing daemon keeps its
	// telemetry instead of losing it to an early return.
	defer func() {
		if ferr := oc.Finish(out); err == nil {
			err = ferr
		}
	}()
	reg, err := oc.Registry()
	if err != nil {
		return err
	}

	stealAge := *steal
	if stealAge <= 0 {
		stealAge = -1 // fabric reads negative as "stealing disabled"
	}
	srv := serve.New(serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cacheN,
		JobTimeout:    *jobTimeout,
		Obs:           reg, // nil lets serve build its own, /metrics stays live
		Trace:         *traceOn,
		Pprof:         *pprofOn,
		FabricWorkers: splitWorkers(*coordinator),
		StealAge:      stealAge,
		ShardLag:      *shardLag,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ksasimd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	// Graceful drain: refuse new jobs, close the listener, wait for the
	// accepted jobs and their in-flight responses, then flush (deferred).
	fmt.Fprintln(out, "ksasimd: signal received, draining")
	srv.StopAdmitting()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if serr := <-errc; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	if err := srv.Drain(dctx); err != nil {
		return err
	}
	fmt.Fprintln(out, "ksasimd: drained cleanly")
	return nil
}
