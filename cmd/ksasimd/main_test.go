package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is an io.Writer safe for the daemon goroutine and the test
// to share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://[^\s]+)`)

// TestDaemonLifecycle is the end-to-end smoke: start the daemon on an
// ephemeral port, serve a run, serve its repeat from cache, then drain
// cleanly on SIGTERM with the -metrics summary flushed.
func TestDaemonLifecycle(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- cmdRun([]string{"-addr", "127.0.0.1:0", "-metrics"}, out) }()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	post := func() (*http.Response, string) {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"candidate":"fifo","n":3}`))
		if err != nil {
			t.Fatalf("POST /v1/run: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}
	r1, b1 := post()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("run: status %d, body %s", r1.StatusCode, b1)
	}
	r2, b2 := post()
	if r2.Header.Get("X-Cache") != "hit" || b1 != b2 {
		t.Fatalf("repeat not cached: X-Cache=%q", r2.Header.Get("X-Cache"))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signalling self: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; output:\n%s", out.String())
	}
	text := out.String()
	for _, want := range []string{"drained cleanly", "-- counters", "serve.cache_hits"} {
		if !strings.Contains(text, want) {
			t.Errorf("daemon output missing %q:\n%s", want, text)
		}
	}
}

// TestDaemonTracePprofFlags: -trace puts an X-Trace-Id on every response
// and -pprof mounts the debug endpoints; both are off by default.
func TestDaemonTracePprofFlags(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- cmdRun([]string{"-addr", "127.0.0.1:0", "-trace", "-pprof"}, out)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got == "" {
		t.Error("-trace daemon response has no X-Trace-Id")
	}
	rresp, err := http.Get(base + "/debug/runtime")
	if err != nil {
		t.Fatalf("debug/runtime: %v", err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Errorf("-pprof daemon GET /debug/runtime = %d, want 200", rresp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signalling self: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM; output:\n%s", out.String())
	}
}

// TestDaemonBadFlags: a bad listen address is an error exit that still
// leaves the run() wrapper's error on stderr.
func TestDaemonBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &errw); code != 1 {
		t.Fatalf("bad addr exit = %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "ksasimd:") {
		t.Fatalf("stderr = %q, want ksasimd: prefix", errw.String())
	}
}
