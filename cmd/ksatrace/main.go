// Command ksatrace converts and inspects trace streams in the two wire
// formats: binary ksatrace (wire format v1, the compact transport) and
// JSONL (the human-debuggable view). The two are informationally
// identical; convert moves between them streaming, so traces of any
// length fit in constant memory.
//
// Usage:
//
//	ksatrace convert -to binary in.jsonl out.ktr   # JSONL → binary
//	ksatrace convert -to jsonl  in.ktr   out.jsonl # binary → JSONL
//	ksatrace inspect in.ktr                        # header + step stats
//	ksatrace cat in.ktr                            # steps as JSONL on stdout
//
// "-" stands for stdin/stdout in every file position. Input format is
// auto-detected (the binary magic against a JSON object), so convert
// also normalizes: converting a stream to its own format re-encodes it
// canonically.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run maps the command body to a process exit code (1 = tool error,
// including truncated or corrupt inputs).
func run(args []string, out, errw io.Writer) int {
	if err := cmdRun(args, out); err != nil {
		fmt.Fprintln(errw, "ksatrace:", err)
		return 1
	}
	return 0
}

func cmdRun(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: ksatrace convert|inspect|cat [flags] files...")
	}
	switch args[0] {
	case "convert":
		return cmdConvert(args[1:], out)
	case "inspect":
		return cmdInspect(args[1:], out)
	case "cat":
		return cmdCat(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want convert, inspect, or cat)", args[0])
	}
}

// openIn resolves a file argument ("-" = stdin) to a reader.
func openIn(name string) (io.Reader, func() error, error) {
	if name == "-" {
		return os.Stdin, func() error { return nil }, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// openOut resolves a file argument ("-" = the command's stdout writer).
func openOut(name string, out io.Writer) (io.Writer, func() error, error) {
	if name == "-" {
		return out, func() error { return nil }, nil
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// cmdConvert streams a trace from one wire format to the other: read
// side auto-detected, write side selected by -to. Steps flow reader →
// writer one at a time; the whole trace is never resident.
func cmdConvert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	to := fs.String("to", "binary", "output format: binary or jsonl")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *to != "binary" && *to != "jsonl" {
		return fmt.Errorf("-to %q: want binary or jsonl", *to)
	}
	if fs.NArg() != 2 {
		return errors.New("usage: ksatrace convert [-to binary|jsonl] IN OUT (use - for stdin/stdout)")
	}
	in, closeIn, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()
	dst, closeOut, err := openOut(fs.Arg(1), out)
	if err != nil {
		return err
	}

	sr, err := trace.NewAnyReader(in)
	if err != nil {
		closeOut()
		return err
	}
	hdr := sr.Header()

	var sink trace.Sink
	var finish func() error
	if *to == "binary" {
		bw, err := trace.NewBinaryWriter(dst, hdr)
		if err != nil {
			closeOut()
			return err
		}
		sink, finish = bw, bw.Close
	} else {
		jw, err := newJSONLWriter(dst, hdr)
		if err != nil {
			closeOut()
			return err
		}
		sink, finish = jw, jw.Close
	}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			closeOut()
			return err
		}
		sink.Step(s)
	}
	if err := finish(); err != nil {
		closeOut()
		return err
	}
	return closeOut()
}

// jsonlWriter is the streaming JSONL counterpart of trace.BinaryWriter:
// header line up front, one step line per Step call, sticky errors.
type jsonlWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

func newJSONLWriter(w io.Writer, hdr trace.StreamHeader) (*jsonlWriter, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(hdr); err != nil {
		return nil, fmt.Errorf("encode jsonl header: %w", err)
	}
	return &jsonlWriter{bw: bw, enc: enc}, nil
}

func (w *jsonlWriter) Step(s model.Step) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(&s)
}

func (w *jsonlWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// cmdInspect prints a stream's header and per-kind step histogram — and,
// because it decodes every step, doubles as an integrity check:
// truncated or corrupt streams fail here with the decoder's error.
func cmdInspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: ksatrace inspect FILE (use - for stdin)")
	}
	in, closeIn, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()

	sr, err := trace.NewAnyReader(in)
	if err != nil {
		return err
	}
	hdr := sr.Header()
	format := "jsonl"
	if _, ok := sr.(*trace.BinaryReader); ok {
		format = "binary"
	}
	fmt.Fprintf(out, "format:   %s\n", format)
	fmt.Fprintf(out, "name:     %q\n", hdr.Name)
	fmt.Fprintf(out, "n:        %d\n", hdr.N)
	fmt.Fprintf(out, "complete: %v\n", hdr.Complete)
	if hdr.Steps >= 0 {
		fmt.Fprintf(out, "declared: %d steps\n", hdr.Steps)
	}

	kinds := make(map[model.StepKind]int)
	procs := make(map[model.ProcID]bool)
	steps := 0
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		kinds[s.Kind]++
		procs[s.Proc] = true
		steps++
	}
	fmt.Fprintf(out, "steps:    %d (%d processes active)\n", steps, len(procs))
	ordered := make([]model.StepKind, 0, len(kinds))
	for k := range kinds {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, k := range ordered {
		fmt.Fprintf(out, "  %-18s %d\n", k.String(), kinds[k])
	}
	return nil
}

// cmdCat streams a trace of either format to stdout as JSONL — the
// quickest debug view of a binary stream.
func cmdCat(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cat", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: ksatrace cat FILE (use - for stdin)")
	}
	return cmdConvert([]string{"-to", "jsonl", fs.Arg(0), "-"}, out)
}
