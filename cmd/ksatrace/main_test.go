package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// fixture writes a small trace to dir in both formats and returns the
// two paths plus the trace itself.
func fixture(t *testing.T, dir string) (jsonlPath, binPath string, tr *trace.Trace) {
	t.Helper()
	x := model.NewExecution(2)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "<p>&q"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1},
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "<p>&q"},
		model.Step{Proc: 2, Kind: model.KindDecide, Obj: 1, Val: "v"},
	)
	tr = trace.New(x)
	tr.Complete = true
	tr.Name = "fixture"

	var jsonl, bin bytes.Buffer
	if err := tr.EncodeJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	jsonlPath = filepath.Join(dir, "t.jsonl")
	binPath = filepath.Join(dir, "t.ktr")
	if err := os.WriteFile(jsonlPath, jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return jsonlPath, binPath, tr
}

// TestConvertRoundTrip: converting JSONL → binary → JSONL reproduces the
// canonical encodings byte for byte (modulo the binary header's step
// count: a streaming convert cannot know the total up front, so the
// JSONL-sourced binary differs from EncodeBinary only there and the
// decoded traces are compared instead).
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jsonlPath, binPath, tr := fixture(t, dir)

	// JSONL → binary.
	outBin := filepath.Join(dir, "out.ktr")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"convert", "-to", "binary", jsonlPath, outBin}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert to binary failed: %s", stderr.String())
	}
	f, err := os.Open(outBin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeBinary(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Len() != tr.X.Len() || got.Name != tr.Name || got.Complete != tr.Complete {
		t.Fatalf("converted binary trace mismatch: %d steps %q", got.X.Len(), got.Name)
	}
	for i := range got.X.Steps {
		if got.X.Steps[i] != tr.X.Steps[i] {
			t.Fatalf("step %d mismatch after convert: %+v vs %+v", i, got.X.Steps[i], tr.X.Steps[i])
		}
	}

	// binary → JSONL lands byte-identically on the canonical JSONL.
	outJSONL := filepath.Join(dir, "out.jsonl")
	if code := run([]string{"convert", "-to", "jsonl", binPath, outJSONL}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert to jsonl failed: %s", stderr.String())
	}
	want, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(outJSONL)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, want) {
		t.Fatalf("binary → jsonl not byte-identical:\n%s\nvs\n%s", gotBytes, want)
	}
}

// TestConvertStdinStdout: "-" works in both file positions.
func TestConvertStdinStdout(t *testing.T) {
	dir := t.TempDir()
	_, binPath, tr := fixture(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"convert", "-to", "jsonl", binPath, "-"}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert to stdout failed: %s", stderr.String())
	}
	got, err := trace.DecodeJSONL(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Len() != tr.X.Len() {
		t.Fatalf("stdout convert has %d steps, want %d", got.X.Len(), tr.X.Len())
	}
}

// TestInspect: header fields, step totals, and the per-kind histogram.
func TestInspect(t *testing.T) {
	dir := t.TempDir()
	jsonlPath, binPath, _ := fixture(t, dir)
	for path, format := range map[string]string{binPath: "binary", jsonlPath: "jsonl"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"inspect", path}, &stdout, &stderr); code != 0 {
			t.Fatalf("inspect %s failed: %s", path, stderr.String())
		}
		out := stdout.String()
		for _, want := range []string{
			"format:   " + format,
			`name:     "fixture"`,
			"n:        2",
			"complete: true",
			"steps:    4 (2 processes active)",
			"deliver",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("inspect %s output missing %q:\n%s", format, want, out)
			}
		}
	}
}

// TestInspectDetectsTruncation: inspect decodes every step, so a cut
// binary stream fails loudly instead of printing a partial histogram.
func TestInspectDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	_, binPath, _ := fixture(t, dir)
	whole, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	cutPath := filepath.Join(dir, "cut.ktr")
	if err := os.WriteFile(cutPath, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"inspect", cutPath}, &stdout, &stderr); code == 0 {
		t.Fatal("inspect accepted a truncated stream")
	}
	if !strings.Contains(stderr.String(), "truncated") {
		t.Fatalf("inspect error = %q, want mention of truncation", stderr.String())
	}
}

// TestCat: cat emits the JSONL view of a binary stream.
func TestCat(t *testing.T) {
	dir := t.TempDir()
	jsonlPath, binPath, _ := fixture(t, dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"cat", binPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("cat failed: %s", stderr.String())
	}
	want, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("cat output differs from canonical JSONL:\n%s\nvs\n%s", stdout.Bytes(), want)
	}
}

// TestUsageErrors: bad subcommands and flag values are exit code 1 with
// a usage message, not panics.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"convert", "-to", "xml", "a", "b"},
		{"convert", "only-one-file"},
		{"inspect"},
		{"cat"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("args %v: expected failure", args)
		}
	}
}
