// Command ksasim runs k-set-agreement workloads over a chosen broadcast
// abstraction, either on the deterministic step-driven runtime (seeded
// random schedules, reproducible) or on the concurrent goroutine runtime,
// and reports decision statistics: how many distinct values were decided,
// message counts, and whether the k-SA specification held.
//
// Usage:
//
//	ksasim -b first-k -n 5 -k 2 -runs 100 [-crashes 2] [-concurrent]
//	       [-drop 0.1] [-dup 0.05] [-partition "1,2|3,4@100ms+500ms"]
//	       [-seed 7] [-wait 30s] [-conformance]
//	       [-sockets] [-rebroadcast] [-hosts cluster.hosts] [-listen :9000]
//	       [-explore] [-strategy pct] [-depth 3] [-schedules 1000]
//	       [-minimize 3] [-trace-out ce]
//	       [-metrics] [-events out.jsonl] [-http 127.0.0.1:8123]
//	ksasim -node -id 2 -harness 10.0.0.1:9000
//
// -sockets runs the workload on the third transport (internal/nettcp):
// every CAMP process is a real operating-system process exchanging
// length-prefixed frames over TCP. The command re-execs itself once per
// node with -node, collects the per-node .ktr trace streams, merges
// them by the identity-erased conformance projection, and differentially
// checks the verdict against the deterministic runtime. -rebroadcast
// floods every message to all peers with hash dedup instead of direct
// unicast. With -hosts the command forks nothing: it reads a flag file
// ("<id> <host>" per line), binds the harness at the explicit -listen
// address, and waits for operator-started `ksasim -node` processes to
// dial in from the listed hosts — the multi-host mode.
//
// -explore runs the violation-hunting fleet (internal/explore) instead
// of a workload: a parallel sweep of seeded schedules under the chosen
// -strategy (fair, random, or pct), fail-fast live checking of the
// candidate's spec and k-SA, and delta-debugging of each violating
// schedule down to a 1-minimal decision prefix. Findings print with the
// run seed that reproduces them, and -trace-out writes each minimized
// counterexample to `prefix`-<cell>.ktr for replay and inspection with
// ksatrace. The whole report is deterministic in (-seed, -strategy,
// -schedules, ...) at any -workers count.
//
// The fault flags apply to the concurrent runtime: -drop and -dup are
// per-transit loss/duplication probabilities, and -partition cuts the
// links between two comma-separated process sets, optionally activating
// at @start and healing after +heal (omit +heal for a permanent cut;
// separate multiple partitions with ';'). Injections are counted under
// the net.faults.* metrics (visible with -metrics or -http).
//
// -conformance runs the cross-runtime differential check instead: the
// same workload script on the deterministic and the concurrent runtime,
// compared by spec verdict and per-process deliveries
// (see internal/conformance). With -b all it runs the whole differential
// corpus — every registered candidate across the standard grid — on the
// parallel sweep engine (-workers bounds the cells in flight).
//
// With -http the command serves live metrics while the workload runs:
// `/` is a plain-text summary, `/metrics` Prometheus text exposition,
// and `/vars` an expvar-style JSON map of counters and gauges.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"nobroadcast/internal/broadcast"
	conf "nobroadcast/internal/conformance"
	"nobroadcast/internal/explore"
	"nobroadcast/internal/ksa"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/nettcp"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run maps the command body to a process exit code. The body defers its
// observability flush, so a failing invocation still emits the -metrics
// summary and finalizes the -events log before the process exits.
func run(args []string, out, errw io.Writer) int {
	if err := cmdRun(args, out); err != nil {
		fmt.Fprintln(errw, "ksasim:", err)
		return 1
	}
	return 0
}

func cmdRun(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("ksasim", flag.ContinueOnError)
	name := fs.String("b", "first-k", "broadcast abstraction ("+strings.Join(broadcast.Names(), ", ")+")")
	n := fs.Int("n", 5, "number of processes")
	k := fs.Int("k", 2, "agreement degree")
	runs := fs.Int("runs", 100, "number of seeded runs (deterministic runtime)")
	crashes := fs.Int("crashes", 0, "number of processes crashed mid-run")
	concurrent := fs.Bool("concurrent", false, "use the concurrent goroutine runtime instead")
	drop := fs.Float64("drop", 0, "per-transit loss probability (concurrent runtime)")
	dup := fs.Float64("dup", 0, "per-transit duplication probability (concurrent runtime)")
	partition := fs.String("partition", "", "timed link cuts, `\"A|B[@start+heal]\"` with comma-separated process ids; ';' separates partitions (concurrent runtime)")
	seed := fs.Uint64("seed", 0, "delay/fault seed for the concurrent runtime (0 = wall clock)")
	wait := fs.Duration("wait", 30*time.Second, "delivery-convergence timeout (concurrent runtime)")
	conformance := fs.Bool("conformance", false, "run the cross-runtime differential check instead of a workload")
	sockets := fs.Bool("sockets", false, "run the workload on the TCP socket transport (one OS process per CAMP node) and differentially check it against the deterministic runtime")
	rebroadcast := fs.Bool("rebroadcast", false, "flood messages to all peers with hash dedup instead of direct unicast (-sockets)")
	hostsFile := fs.String("hosts", "", "multi-host flag `file` (\"<id> <host>\" per line): await operator-started -node processes instead of forking (-sockets)")
	listen := fs.String("listen", "", "harness bind `address` for -sockets (default loopback ephemeral; an explicit port is required with -hosts)")
	nodeMode := fs.Bool("node", false, "run as a single socket-transport CAMP node (child mode; needs -id and -harness)")
	nodeID := fs.Int("id", 0, "this node's 1-based process id (-node)")
	harnessAddr := fs.String("harness", "", "harness `address` to dial (-node)")
	exploreMode := fs.Bool("explore", false, "hunt for spec-violating schedules and delta-debug them to minimized counterexamples")
	strategy := fs.String("strategy", "pct", "exploration scheduling strategy ("+strings.Join(sched.StrategyNames(), ", ")+")")
	depth := fs.Int("depth", 0, "pct priority-change points (0 = default)")
	schedules := fs.Int("schedules", 1000, "seeded schedules to explore with -explore")
	minimize := fs.Int("minimize", 0, "violating schedules to delta-debug with -explore (0 = default, -1 = none)")
	traceOut := fs.String("trace-out", "", "write each minimized counterexample to `prefix`-<cell>.ktr (-explore)")
	workers := fs.Int("workers", 0, "worker bound for -explore and -b all -conformance; 0 means GOMAXPROCS")
	live := fs.Bool("live", false, "check specs incrementally while runs execute (streaming, no post-hoc rescan)")
	httpAddr := fs.String("http", "", "serve live metrics (/, /metrics, /vars) on this `address` while the workload runs")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The sinks flush on every exit path — a failing run keeps its
	// telemetry instead of losing it to an early return.
	defer func() {
		if ferr := oc.Finish(out); err == nil {
			err = ferr
		}
	}()
	if *nodeMode {
		// Child mode: this process is one CAMP node. Everything it needs
		// (candidate, peers, seed, fault plan) arrives in the harness's
		// start frame, so the only flags that matter are -id and -harness.
		reg, err := oc.Registry()
		if err != nil {
			return err
		}
		return nettcp.RunNode(nettcp.NodeConfig{ID: *nodeID, Harness: *harnessAddr, Obs: reg})
	}
	if *name == "all" && *conformance {
		reg, err := oc.Registry()
		if err != nil {
			return err
		}
		return runCorpus(out, *seed, *workers, reg)
	}
	cand, err := broadcast.Lookup(*name)
	if err != nil {
		return err
	}
	if *crashes >= *n {
		return fmt.Errorf("crashes must leave at least one process alive")
	}
	faults, err := buildFaultPlan(*drop, *dup, *partition)
	if err != nil {
		return err
	}
	reg, err := oc.Registry()
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		if reg == nil {
			reg = obs.New()
		}
		ln, err := stdnet.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: reg}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "metrics endpoint: http://%s/ (paths: /, /metrics, /vars)\n", ln.Addr())
	}
	switch {
	case *exploreMode:
		if faults != nil {
			return fmt.Errorf("-drop/-dup/-partition do not apply to -explore (schedule faults come from -crashes)")
		}
		err = runExplore(out, explore.Options{
			Candidate: *name,
			N:         *n,
			K:         *k,
			Strategy:  *strategy,
			Depth:     *depth,
			Schedules: *schedules,
			Seed:      *seed,
			Crashes:   *crashes,
			Workers:   *workers,
			Minimize:  *minimize,
			Obs:       reg,
		}, *traceOut, reg)
	case *sockets:
		err = runSockets(out, cand, *n, *k, *seed, faults, *wait, *rebroadcast, *hostsFile, *listen)
	case *conformance:
		err = runConformance(out, cand, *n, *k, *seed, faults, *wait)
	case *concurrent:
		err = runConcurrent(out, cand, *n, *k, *seed, faults, *wait, *live, reg)
	default:
		if faults != nil {
			return fmt.Errorf("-drop/-dup/-partition need -concurrent or -conformance (the deterministic runtime has no transport faults)")
		}
		err = runDeterministic(out, cand, *n, *k, *runs, *crashes, *live, reg)
	}
	return err
}

func runDeterministic(out io.Writer, cand broadcast.Candidate, n, k, runs, crashes int, live bool, reg *obs.Registry) error {
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = model.Value(fmt.Sprintf("v%d", i+1))
	}
	histogram := make(map[int]int) // distinct decisions -> runs
	violations := 0
	liveStops := 0
	var steps, sends int
	span := reg.StartSpan("ksasim.deterministic")
	defer span.End()
	runCounter := reg.Counter("ksasim.runs")
	violCounter := reg.Counter("ksasim.violations")
	for seed := uint64(1); seed <= uint64(runs); seed++ {
		cfg := sched.Config{
			N:            n,
			NewAutomaton: cand.NewAutomaton,
			Oracle:       ksa.Instrument(cand.OracleFor(k), reg),
			NewApp:       cand.SolverFor(),
			Inputs:       inputs,
			Obs:          reg,
		}
		if live {
			cfg.LiveSpecs = []spec.Spec{spec.KSA(k)}
		}
		rt, err := sched.New(cfg)
		if err != nil {
			return err
		}
		crashAt := make(map[int]model.ProcID, crashes)
		for c := 0; c < crashes; c++ {
			crashAt[5+7*c] = model.ProcID(n - c)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed, CrashAt: crashAt})
		var lve *sched.LiveViolationError
		switch {
		case errors.As(err, &lve):
			// The live checker stopped the run at the violating step; the
			// partial trace still contributes to the statistics.
			tr = lve.Trace
			violations++
			liveStops++
			violCounter.Inc()
		case err != nil:
			return err
		default:
			verdict := spec.KSA(k).Check(tr)
			if live {
				// The monitor saw every step already; read its latched
				// verdict instead of rescanning the trace.
				mon := rt.LiveMonitor()
				mon.Finish(tr.Complete)
				verdict, _ = mon.Verdict(spec.KSA(k).Name())
			}
			if verdict != nil {
				violations++
				violCounter.Inc()
			}
		}
		ix := tr.Index()
		histogram[len(ix.DistinctDecisions(sched.DefaultAppObject))]++
		runCounter.Inc()
		steps += tr.X.Len()
		for _, s := range tr.X.Steps {
			if s.Kind == model.KindSend {
				sends++
			}
		}
	}
	fmt.Fprintf(out, "%s: n=%d k=%d runs=%d crashes=%d\n", cand.Name, n, k, runs, crashes)
	fmt.Fprintf(out, "  distinct-decision histogram (distinct -> runs):\n")
	for d := 0; d <= n; d++ {
		if c, ok := histogram[d]; ok {
			marker := ""
			if d > k {
				marker = "  <-- exceeds k!"
			}
			fmt.Fprintf(out, "    %d: %d%s\n", d, c, marker)
		}
	}
	fmt.Fprintf(out, "  %d-SA violations: %d/%d runs\n", k, violations, runs)
	if live {
		fmt.Fprintf(out, "  live checking: %d runs stopped at the violating step\n", liveStops)
	}
	fmt.Fprintf(out, "  avg steps/run: %d   avg sends/run: %d\n", steps/runs, sends/runs)
	if cand.SolvesKSA && violations > 0 {
		return fmt.Errorf("%s claims to solve %d-SA but violated it", cand.Name, k)
	}
	return nil
}

// runExplore runs the violation-hunting fleet and prints its report:
// hit rate, schedules/sec, and one entry per minimized finding with the
// seed that reproduces it. The report body (everything but the timing
// line) is deterministic in the exploration options.
func runExplore(out io.Writer, o explore.Options, traceOut string, reg *obs.Registry) error {
	span := reg.StartSpan("ksasim.explore")
	defer span.End()
	start := time.Now()
	res, err := explore.Run(context.Background(), o)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "%s: explore n=%d k=%d strategy=%s schedules=%d seed=%d crashes=%d\n",
		res.Candidate, res.N, res.K, res.Strategy, res.Schedules, res.Seed, res.Crashes)
	rate := float64(res.Schedules) / elapsed.Seconds()
	fmt.Fprintf(out, "  %d/%d schedules violate; %d steps in %v (%.0f schedules/sec)\n",
		res.Violations, res.Schedules, res.TotalSteps, elapsed.Round(time.Millisecond), rate)
	if res.Violations == 0 {
		fmt.Fprintf(out, "  no violating schedule found; try more -schedules, another -strategy, or -crashes\n")
		return nil
	}
	for _, f := range res.Findings {
		fmt.Fprintf(out, "  cell %d: %s/%s at step %d (reproduce with seed %d)\n",
			f.Cell, f.Spec, f.Property, f.StepIdx, f.Seed)
		if f.MinLen > 0 {
			fmt.Fprintf(out, "    minimized %d -> %d decisions (%d steps)\n", f.ScheduleLen, f.MinLen, f.MinSteps)
		}
		if traceOut != "" && len(f.KTR) > 0 {
			path := fmt.Sprintf("%s-%d.ktr", traceOut, f.Cell)
			if err := os.WriteFile(path, f.KTR, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "    counterexample written to %s\n", path)
		}
	}
	if res.Replays > 0 {
		fmt.Fprintf(out, "  minimization: %d findings delta-debugged in %d replays\n", len(res.Findings), res.Replays)
	}
	return nil
}

// buildFaultPlan assembles a net.FaultPlan from the -drop/-dup/-partition
// flags; all zero flags yield a nil plan (the reliable network).
func buildFaultPlan(drop, dup float64, partitions string) (*net.FaultPlan, error) {
	if drop == 0 && dup == 0 && partitions == "" {
		return nil, nil
	}
	plan := &net.FaultPlan{Drop: drop, Dup: dup}
	if partitions != "" {
		for _, spec := range strings.Split(partitions, ";") {
			p, err := parsePartition(strings.TrimSpace(spec))
			if err != nil {
				return nil, err
			}
			plan.Partitions = append(plan.Partitions, p)
		}
	}
	return plan, nil
}

// parsePartition parses "A|B[@start[+heal]]", e.g. "1,2|3,4,5@100ms+500ms":
// cut all links between processes {1,2} and {3,4,5} from 100ms after start,
// healing at 500ms. Omitting +heal makes the cut permanent.
func parsePartition(s string) (net.Partition, error) {
	var p net.Partition
	sides, timing, hasTiming := strings.Cut(s, "@")
	if hasTiming {
		startStr, healStr, hasHeal := strings.Cut(timing, "+")
		start, err := time.ParseDuration(startStr)
		if err != nil {
			return p, fmt.Errorf("partition %q: bad start: %w", s, err)
		}
		p.Start = start
		if hasHeal {
			heal, err := time.ParseDuration(healStr)
			if err != nil {
				return p, fmt.Errorf("partition %q: bad heal: %w", s, err)
			}
			p.Heal = heal
		}
	}
	a, b, found := strings.Cut(sides, "|")
	if !found {
		return p, fmt.Errorf("partition %q: want \"A|B[@start+heal]\" with comma-separated process ids", s)
	}
	var err error
	if p.A, err = parseProcs(a); err != nil {
		return p, fmt.Errorf("partition %q: %w", s, err)
	}
	if p.B, err = parseProcs(b); err != nil {
		return p, fmt.Errorf("partition %q: %w", s, err)
	}
	return p, nil
}

func parseProcs(s string) ([]model.ProcID, error) {
	var out []model.ProcID
	for _, tok := range strings.Split(s, ",") {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &id); err != nil || id < 1 {
			return nil, fmt.Errorf("bad process id %q", tok)
		}
		out = append(out, model.ProcID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty process set")
	}
	return out, nil
}

func oracleDegree(cand broadcast.Candidate, k int) int {
	switch cand.OracleK {
	case -1:
		return k
	case 0:
		return 1
	default:
		return cand.OracleK
	}
}

func runConcurrent(out io.Writer, cand broadcast.Candidate, n, k int, seed uint64, faults *net.FaultPlan, wait time.Duration, live bool, reg *obs.Registry) error {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	span := reg.StartSpan("ksasim.concurrent")
	defer span.End()
	cfg := net.Config{
		N:            n,
		NewAutomaton: cand.NewAutomaton,
		K:            oracleDegree(cand, k),
		MaxDelay:     200 * time.Microsecond,
		Seed:         seed,
		Faults:       faults,
		Obs:          reg,
	}
	if live {
		// Streaming mode: the candidate's spec is checked step by step as
		// the run executes, with no trace recorded (RecordTrace stays off).
		cfg.LiveSpecs = []spec.Spec{cand.Spec(k)}
	}
	nw, err := net.New(cfg)
	if err != nil {
		return err
	}
	defer nw.Stop()
	const perNode = 5
	start := time.Now()
	for p := 1; p <= n; p++ {
		for j := 0; j < perNode; j++ {
			if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("m-%d-%d", p, j))); err != nil {
				return err
			}
		}
	}
	want := int64(n * perNode)
	done := nw.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, wait)
	elapsed := time.Since(start)
	st := nw.StatsSnapshot()
	fmt.Fprintf(out, "%s (concurrent): n=%d, %d broadcasts in %v (complete=%v)\n", cand.Name, n, st.Broadcasts, elapsed, done)
	fmt.Fprintf(out, "  sends=%d receives=%d deliveries=%d (%.1f sends/broadcast)\n",
		st.Sent, st.Received, st.Delivered, float64(st.Sent)/float64(st.Broadcasts))
	if live {
		nw.Stop()
		verdicts := nw.FinishLive(done && faults == nil)
		fmt.Fprintf(out, "  live checking: %d steps streamed through %s\n", nw.LiveSteps(), cand.Spec(k).Name())
		violated := false
		for _, sv := range verdicts {
			if sv.Violation != nil {
				violated = true
				fmt.Fprintf(out, "  live VIOLATION (step %d): %s\n", sv.StepIdx, sv.Violation)
			}
		}
		switch {
		case !violated:
			fmt.Fprintf(out, "  live verdict: admissible\n")
		case cand.ScheduleSensitive:
			// A doomed candidate violating under a concurrent schedule is
			// the paper's expected refutation, found while still running.
			fmt.Fprintf(out, "  counterexample schedule found live (expected: %s is schedule-sensitive)\n", cand.Name)
		default:
			return fmt.Errorf("live spec violation on concurrent run")
		}
	}
	if faults != nil {
		fmt.Fprintf(out, "  faults: dropped=%d duplicated=%d partition-dropped=%d\n",
			st.FaultDrops, st.FaultDups, st.PartitionDrops)
		if !done {
			// Under injected faults, lost deliveries are the experiment's
			// measurement, not a runtime failure.
			fmt.Fprintf(out, "  deliveries incomplete after %v — expected under injected faults\n", wait)
		}
		return nil
	}
	if !done {
		return fmt.Errorf("deliveries incomplete after timeout")
	}
	return nil
}

// runCorpus runs the full differential corpus — every registered candidate
// across the standard (N, K, workload) grid — concurrently on the sweep
// engine and prints one summary line per cell in corpus order.
func runCorpus(out io.Writer, seed uint64, workers int, reg *obs.Registry) error {
	cfgs := conf.Corpus(seed)
	span := reg.StartSpan("ksasim.corpus")
	sums, err := conf.RunCorpus(context.Background(), cfgs, workers, reg)
	span.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "conformance corpus: %d cells (every candidate × standard grid)\n", len(cfgs))
	for _, s := range sums {
		fmt.Fprintf(out, "  %s\n", s)
	}
	fmt.Fprintln(out, "all cells conform")
	return nil
}

// runSockets runs the workload on the socket transport — one OS process
// per CAMP node, forked from this binary via -node — and prints the
// differential comparison against the deterministic runtime. With a
// -hosts file it spawns nothing and instead waits for externally started
// node processes, which makes the same differential check work across
// real machines.
func runSockets(out io.Writer, cand broadcast.Candidate, n, k int, seed uint64, faults *net.FaultPlan, wait time.Duration, rebroadcast bool, hostsFile, listen string) error {
	cfg := conf.SocketConfig{
		Config: conf.Config{
			Candidate:   cand,
			N:           n,
			K:           k,
			Workload:    workload.Config{Kind: workload.Uniform, Messages: 3 * n, Seed: seed},
			Seed:        seed,
			Faults:      faults,
			WaitTimeout: wait,
		},
		Rebroadcast: rebroadcast,
		Listen:      listen,
	}
	if hostsFile != "" {
		hn, hosts, err := nettcp.ReadHostsFile(hostsFile)
		if err != nil {
			return err
		}
		if listen == "" || strings.HasSuffix(listen, ":0") {
			return fmt.Errorf("-hosts needs an explicit -listen address the remote nodes can dial (got %q)", listen)
		}
		cfg.N = hn
		cfg.Config.Workload.Messages = 3 * hn
		cfg.External = true
		// Operators start nodes by hand; give them time to do it.
		cfg.StartTimeout = 5 * time.Minute
		fmt.Fprintf(out, "%s (sockets): waiting for %d external nodes on %s\n", cand.Name, hn, listen)
		fmt.Fprintf(out, "  start on each listed host:\n")
		for id := 1; id <= hn; id++ {
			fmt.Fprintf(out, "    [%s] ksasim -node -id %d -harness %s\n", hosts[id], id, listen)
		}
	} else {
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		cfg.Spawn = nettcp.ExecSpawn(bin, func(id int, harnessAddr string) []string {
			return []string{"-node", "-id", strconv.Itoa(id), "-harness", harnessAddr}
		})
	}
	res, err := conf.CheckSockets(cfg)
	if res != nil {
		verdict := func(v *spec.Violation) string {
			if v == nil {
				return "admissible"
			}
			return v.String()
		}
		fmt.Fprintf(out, "%s (sockets): n=%d k=%d messages=%d rebroadcast=%v\n",
			cand.Name, cfg.N, k, cfg.Config.Workload.Messages, rebroadcast)
		fmt.Fprintf(out, "  deterministic runtime: %s\n", verdict(res.Sched.Verdict))
		fmt.Fprintf(out, "  socket cluster:        %s (complete=%v)\n", verdict(res.Socket.Verdict), res.SocketComplete)
		fmt.Fprintf(out, "  verdicts-agree=%v delivery-sets-agree=%v\n", res.VerdictsAgree, res.DeliverySetsAgree)
		if res.CounterexampleFound {
			fmt.Fprintf(out, "  counterexample schedule found (expected: %s is schedule-sensitive)\n", cand.Name)
		}
		if len(res.Truncated) > 0 {
			fmt.Fprintf(out, "  truncated node streams: %v\n", res.Truncated)
		}
	}
	return err
}

// runConformance runs the cross-runtime differential check for the chosen
// candidate (internal/conformance) and prints the comparison.
func runConformance(out io.Writer, cand broadcast.Candidate, n, k int, seed uint64, faults *net.FaultPlan, wait time.Duration) error {
	res, err := conf.Check(conf.Config{
		Candidate:   cand,
		N:           n,
		K:           k,
		Workload:    workload.Config{Kind: workload.Uniform, Messages: 3 * n, Seed: seed},
		Seed:        seed,
		Faults:      faults,
		WaitTimeout: wait,
	})
	if res != nil {
		verdict := func(v *spec.Violation) string {
			if v == nil {
				return "admissible"
			}
			return v.String()
		}
		fmt.Fprintf(out, "%s (conformance): n=%d k=%d messages=%d\n", cand.Name, n, k, 3*n)
		fmt.Fprintf(out, "  deterministic runtime: %s\n", verdict(res.Sched.Verdict))
		fmt.Fprintf(out, "  concurrent runtime:    %s (complete=%v)\n", verdict(res.Net.Verdict), res.NetComplete)
		fmt.Fprintf(out, "  verdicts-agree=%v delivery-sets-agree=%v\n", res.VerdictsAgree, res.DeliverySetsAgree)
		if res.CounterexampleFound {
			fmt.Fprintf(out, "  counterexample schedule found (expected: %s is schedule-sensitive)\n", cand.Name)
		}
		if faults != nil {
			fmt.Fprintf(out, "  faults: dropped=%d duplicated=%d partition-dropped=%d\n",
				res.NetStats.FaultDrops, res.NetStats.FaultDups, res.NetStats.PartitionDrops)
		}
	}
	return err
}
