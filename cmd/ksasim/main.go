// Command ksasim runs k-set-agreement workloads over a chosen broadcast
// abstraction, either on the deterministic step-driven runtime (seeded
// random schedules, reproducible) or on the concurrent goroutine runtime,
// and reports decision statistics: how many distinct values were decided,
// message counts, and whether the k-SA specification held.
//
// Usage:
//
//	ksasim -b first-k -n 5 -k 2 -runs 100 [-crashes 2] [-concurrent]
//	       [-metrics] [-events out.jsonl] [-http 127.0.0.1:8123]
//
// With -http the command serves live metrics while the workload runs:
// `/` is a plain-text summary, `/metrics` Prometheus text exposition,
// and `/vars` an expvar-style JSON map of counters and gauges.
package main

import (
	"flag"
	"fmt"
	"io"
	stdnet "net"
	"net/http"
	"os"
	"strings"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/ksa"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ksasim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ksasim", flag.ContinueOnError)
	name := fs.String("b", "first-k", "broadcast abstraction ("+strings.Join(broadcast.Names(), ", ")+")")
	n := fs.Int("n", 5, "number of processes")
	k := fs.Int("k", 2, "agreement degree")
	runs := fs.Int("runs", 100, "number of seeded runs (deterministic runtime)")
	crashes := fs.Int("crashes", 0, "number of processes crashed mid-run")
	concurrent := fs.Bool("concurrent", false, "use the concurrent goroutine runtime instead")
	httpAddr := fs.String("http", "", "serve live metrics (/, /metrics, /vars) on this `address` while the workload runs")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cand, err := broadcast.Lookup(*name)
	if err != nil {
		return err
	}
	if *crashes >= *n {
		return fmt.Errorf("crashes must leave at least one process alive")
	}
	reg, err := oc.Registry()
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		if reg == nil {
			reg = obs.New()
		}
		ln, err := stdnet.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: reg}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "metrics endpoint: http://%s/ (paths: /, /metrics, /vars)\n", ln.Addr())
	}
	if *concurrent {
		err = runConcurrent(out, cand, *n, *k, reg)
	} else {
		err = runDeterministic(out, cand, *n, *k, *runs, *crashes, reg)
	}
	if err != nil {
		return err
	}
	return oc.Finish(out)
}

func runDeterministic(out io.Writer, cand broadcast.Candidate, n, k, runs, crashes int, reg *obs.Registry) error {
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = model.Value(fmt.Sprintf("v%d", i+1))
	}
	histogram := make(map[int]int) // distinct decisions -> runs
	violations := 0
	var steps, sends int
	span := reg.StartSpan("ksasim.deterministic")
	defer span.End()
	runCounter := reg.Counter("ksasim.runs")
	violCounter := reg.Counter("ksasim.violations")
	for seed := uint64(1); seed <= uint64(runs); seed++ {
		rt, err := sched.New(sched.Config{
			N:            n,
			NewAutomaton: cand.NewAutomaton,
			Oracle:       ksa.Instrument(cand.OracleFor(k), reg),
			NewApp:       cand.SolverFor(),
			Inputs:       inputs,
			Obs:          reg,
		})
		if err != nil {
			return err
		}
		crashAt := make(map[int]model.ProcID, crashes)
		for c := 0; c < crashes; c++ {
			crashAt[5+7*c] = model.ProcID(n - c)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed, CrashAt: crashAt})
		if err != nil {
			return err
		}
		ix := trace.BuildIndex(tr)
		histogram[len(ix.DistinctDecisions(sched.DefaultAppObject))]++
		runCounter.Inc()
		if v := spec.KSA(k).Check(tr); v != nil {
			violations++
			violCounter.Inc()
		}
		steps += tr.X.Len()
		for _, s := range tr.X.Steps {
			if s.Kind == model.KindSend {
				sends++
			}
		}
	}
	fmt.Fprintf(out, "%s: n=%d k=%d runs=%d crashes=%d\n", cand.Name, n, k, runs, crashes)
	fmt.Fprintf(out, "  distinct-decision histogram (distinct -> runs):\n")
	for d := 0; d <= n; d++ {
		if c, ok := histogram[d]; ok {
			marker := ""
			if d > k {
				marker = "  <-- exceeds k!"
			}
			fmt.Fprintf(out, "    %d: %d%s\n", d, c, marker)
		}
	}
	fmt.Fprintf(out, "  %d-SA violations: %d/%d runs\n", k, violations, runs)
	fmt.Fprintf(out, "  avg steps/run: %d   avg sends/run: %d\n", steps/runs, sends/runs)
	if cand.SolvesKSA && violations > 0 {
		return fmt.Errorf("%s claims to solve %d-SA but violated it", cand.Name, k)
	}
	return nil
}

func runConcurrent(out io.Writer, cand broadcast.Candidate, n, k int, reg *obs.Registry) error {
	ok := 1
	switch cand.OracleK {
	case -1:
		ok = k
	case 0:
		ok = 1
	default:
		ok = cand.OracleK
	}
	span := reg.StartSpan("ksasim.concurrent")
	defer span.End()
	nw, err := net.New(net.Config{
		N:            n,
		NewAutomaton: cand.NewAutomaton,
		K:            ok,
		MaxDelay:     200 * time.Microsecond,
		Seed:         uint64(time.Now().UnixNano()),
		Obs:          reg,
	})
	if err != nil {
		return err
	}
	defer nw.Stop()
	const perNode = 5
	start := time.Now()
	for p := 1; p <= n; p++ {
		for j := 0; j < perNode; j++ {
			if _, err := nw.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("m-%d-%d", p, j))); err != nil {
				return err
			}
		}
	}
	want := int64(n * perNode)
	done := nw.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		return true
	}, 30*time.Second)
	elapsed := time.Since(start)
	st := nw.StatsSnapshot()
	fmt.Fprintf(out, "%s (concurrent): n=%d, %d broadcasts in %v (complete=%v)\n", cand.Name, n, st.Broadcasts, elapsed, done)
	fmt.Fprintf(out, "  sends=%d receives=%d deliveries=%d (%.1f sends/broadcast)\n",
		st.Sent, st.Received, st.Delivered, float64(st.Sent)/float64(st.Broadcasts))
	if !done {
		return fmt.Errorf("deliveries incomplete after timeout")
	}
	return nil
}
