package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestKsasimDeterministic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "first-k", "-n", "4", "-k", "2", "-runs", "20"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "first-k: n=4 k=2 runs=20") {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "2-SA violations: 0/20 runs") {
		t.Errorf("expected zero violations:\n%s", s)
	}
}

func TestKsasimWithCrashes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "first-k", "-n", "4", "-k", "2", "-runs", "10", "-crashes", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "crashes=2") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestKsasimWeakBroadcastShowsDisagreement(t *testing.T) {
	// send-to-all does not solve k-SA: the histogram may exceed k, and
	// since the candidate does not claim to solve it, run still succeeds.
	var out bytes.Buffer
	if err := run([]string{"-b", "send-to-all", "-n", "5", "-k", "2", "-runs", "30"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "distinct-decision histogram") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestKsasimConcurrent(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "reliable", "-n", "3", "-concurrent"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "reliable (concurrent): n=3") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestKsasimBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "nope"}, &out); err == nil {
		t.Error("expected unknown-candidate error")
	}
	if err := run([]string{"-n", "3", "-crashes", "3"}, &out); err == nil {
		t.Error("expected too-many-crashes error")
	}
}

func TestKsasimMetricsAndHTTP(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "first-k", "-n", "4", "-k", "2", "-runs", "5", "-metrics", "-http", "127.0.0.1:0"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"metrics endpoint: http://127.0.0.1:",
		"ksasim.runs",
		"ksa.proposals",
		"ksa.decisions",
		"sched.steps",
		"ksasim.deterministic",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestKsasimConcurrentMetrics(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-b", "reliable", "-n", "3", "-concurrent", "-metrics"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{"ksasim.concurrent", "net.sent", "net.delivered", "net.delay_us"} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}
