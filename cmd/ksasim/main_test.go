package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKsasimDeterministic(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "first-k", "-n", "4", "-k", "2", "-runs", "20"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "first-k: n=4 k=2 runs=20") {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "2-SA violations: 0/20 runs") {
		t.Errorf("expected zero violations:\n%s", s)
	}
}

func TestKsasimWithCrashes(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "first-k", "-n", "4", "-k", "2", "-runs", "10", "-crashes", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "crashes=2") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestKsasimWeakBroadcastShowsDisagreement(t *testing.T) {
	// send-to-all does not solve k-SA: the histogram may exceed k, and
	// since the candidate does not claim to solve it, run still succeeds.
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "send-to-all", "-n", "5", "-k", "2", "-runs", "30"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "distinct-decision histogram") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestKsasimConcurrent(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-concurrent"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "reliable (concurrent): n=3") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestKsasimBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "nope"}, &out); err == nil {
		t.Error("expected unknown-candidate error")
	}
	if err := cmdRun([]string{"-n", "3", "-crashes", "3"}, &out); err == nil {
		t.Error("expected too-many-crashes error")
	}
}

func TestKsasimMetricsAndHTTP(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "first-k", "-n", "4", "-k", "2", "-runs", "5", "-metrics", "-http", "127.0.0.1:0"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"metrics endpoint: http://127.0.0.1:",
		"ksasim.runs",
		"ksa.proposals",
		"ksa.decisions",
		"sched.steps",
		"ksasim.deterministic",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestKsasimConcurrentMetrics(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-concurrent", "-metrics"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{"ksasim.concurrent", "net.sent", "net.delivered", "net.delay_us"} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestKsasimConcurrentWithDrop(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "reliable", "-n", "4", "-concurrent", "-drop", "0.1", "-seed", "7", "-wait", "5s", "-metrics"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "faults: dropped=") {
		t.Errorf("fault counter line missing:\n%s", s)
	}
	if !strings.Contains(s, "net.faults.dropped") {
		t.Errorf("net.faults.dropped metric missing:\n%s", s)
	}
	// Drop 0.1 over a 4-node echo storm loses something with overwhelming
	// probability at this seed; the counter must be observable and non-zero.
	if strings.Contains(s, "faults: dropped=0 ") {
		t.Errorf("expected non-zero injected drops:\n%s", s)
	}
}

func TestKsasimConcurrentWithPartition(t *testing.T) {
	var out bytes.Buffer
	// Permanent cut {1}|{2,3}: send-to-all cannot complete deliveries, which
	// under injected faults is reported, not an error.
	if err := cmdRun([]string{"-b", "send-to-all", "-n", "3", "-concurrent", "-partition", "1|2,3", "-seed", "3", "-wait", "300ms"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "partition-dropped=") {
		t.Errorf("partition counter line missing:\n%s", s)
	}
	if !strings.Contains(s, "expected under injected faults") {
		t.Errorf("incomplete-delivery note missing:\n%s", s)
	}
}

func TestKsasimConformance(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-k", "2", "-conformance", "-seed", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"reliable (conformance): n=3 k=2",
		"deterministic runtime: admissible",
		"verdicts-agree=true delivery-sets-agree=true",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

func TestKsasimFaultFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-drop", "0.1"}, &out); err == nil {
		t.Error("expected error: fault flags without -concurrent")
	}
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-concurrent", "-drop", "1.5"}, &out); err == nil {
		t.Error("expected error: drop probability out of range")
	}
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-concurrent", "-partition", "1,2"}, &out); err == nil {
		t.Error("expected error: partition without the | separator")
	}
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-concurrent", "-partition", "1|9"}, &out); err == nil {
		t.Error("expected error: partition names an out-of-range process")
	}
	if err := cmdRun([]string{"-b", "reliable", "-n", "3", "-concurrent", "-partition", "1|2@5s+1s"}, &out); err == nil {
		t.Error("expected error: heal before start")
	}
}

func TestParsePartitionTimings(t *testing.T) {
	p, err := parsePartition("1,2|3@100ms+500ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.A) != 2 || len(p.B) != 1 || p.Start.Milliseconds() != 100 || p.Heal.Milliseconds() != 500 {
		t.Errorf("parsed %+v", p)
	}
	p, err = parsePartition("1|2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Start != 0 || p.Heal != 0 {
		t.Errorf("untimed partition parsed %+v", p)
	}
}

// TestKsasimCorpus: -b all -conformance runs the full differential corpus
// on the sweep engine and reports every cell.
func TestKsasimCorpus(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "all", "-conformance", "-workers", "4", "-seed", "9"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"conformance corpus:",
		"causal n=2 k=1",
		"kbo n=4 k=2",
		"all cells conform",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
}

// TestKsasimExplore: -explore hunts the k-bounded-order candidate (the
// abstraction the paper refutes), minimizes a violating schedule, writes
// the counterexample .ktr, and prints the seed that reproduces it.
func TestKsasimExplore(t *testing.T) {
	prefix := filepath.Join(t.TempDir(), "ce")
	var out bytes.Buffer
	err := cmdRun([]string{
		"-b", "kbo", "-n", "3", "-k", "2", "-explore",
		"-strategy", "random", "-schedules", "10", "-seed", "1",
		"-minimize", "1", "-trace-out", prefix, "-metrics",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"kbo: explore n=3 k=2 strategy=random schedules=10 seed=1",
		"schedules violate",
		"schedules/sec",
		"2-BO-Order/k-Bounded-Order",
		"reproduce with seed",
		"minimized",
		"counterexample written to " + prefix,
		"explore.violations", // obs instrumentation reaches -metrics
		"ksasim.explore",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("output missing %q:\n%s", w, s)
		}
	}
	if _, err := os.Stat(prefix + "-2.ktr"); err != nil {
		t.Errorf("minimized counterexample file: %v", err)
	}
}

// TestKsasimExploreDeterministicReport: everything above the per-finding
// detail except the wall-clock line is a pure function of the flags.
func TestKsasimExploreDeterministicReport(t *testing.T) {
	report := func() []string {
		var out bytes.Buffer
		err := cmdRun([]string{
			"-b", "send-to-all", "-n", "3", "-k", "1", "-explore",
			"-strategy", "pct", "-depth", "3", "-schedules", "8",
			"-seed", "42", "-minimize", "1",
		}, &out)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		var lines []string
		for _, l := range strings.Split(out.String(), "\n") {
			if !strings.Contains(l, "schedules/sec") { // the one timing line
				lines = append(lines, l)
			}
		}
		return lines
	}
	a, b := report(), report()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("explore report not deterministic:\n%v\nvs\n%v", a, b)
	}
}

// TestKsasimExploreFlagValidation: transport-fault flags are concurrent-
// runtime concepts and are rejected under -explore.
func TestKsasimExploreFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun([]string{"-b", "kbo", "-explore", "-drop", "0.1"}, &out); err == nil {
		t.Error("expected error: -drop with -explore")
	}
	if err := cmdRun([]string{"-b", "kbo", "-explore", "-strategy", "zigzag", "-schedules", "1"}, &out); err == nil {
		t.Error("expected error: unknown strategy")
	}
}

// TestFailedRunStillEmitsMetrics: a run that fails mid-way (convergence
// timeout) must still flush its observability sinks — the deferred flush
// in cmdRun runs on every exit path, so the -metrics summary and the
// -events log survive the failure.
func TestFailedRunStillEmitsMetrics(t *testing.T) {
	var out, errw bytes.Buffer
	code := run([]string{"-b", "reliable", "-n", "3", "-concurrent", "-seed", "5", "-wait", "1ns", "-metrics"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "deliveries incomplete") {
		t.Errorf("stderr missing failure cause:\n%s", errw.String())
	}
	s := out.String()
	for _, w := range []string{"-- spans", "ksasim.concurrent", "-- counters"} {
		if !strings.Contains(s, w) {
			t.Errorf("failed run lost its metrics summary (missing %q):\n%s", w, s)
		}
	}
}

// TestFailedRunStillWritesEvents: the -events JSONL log is finalized (and
// reported) even when the run errors out.
func TestFailedRunStillWritesEvents(t *testing.T) {
	events := filepath.Join(t.TempDir(), "events.jsonl")
	var out, errw bytes.Buffer
	code := run([]string{"-b", "reliable", "-n", "3", "-concurrent", "-seed", "5", "-wait", "1ns", "-events", events}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "events written to") {
		t.Errorf("event log not finalized on failure:\n%s", out.String())
	}
	if _, err := os.Stat(events); err != nil {
		t.Errorf("event log file missing: %v", err)
	}
}
