// Command ksasimload is the load generator for the ksasimd serving path:
// it drives a zipfian mix of workload-run, adversary-construction,
// trace-check, exploration, and conformance-corpus requests at a target
// rate (open loop) or at full tilt under bounded concurrency (closed
// loop), and reports client-side latency quantiles next to the daemon's
// own counter deltas. Pointed at a coordinator daemon, an
// explore/corpus mix loads the whole sweep fabric.
//
// Usage:
//
//	ksasimload -addr http://127.0.0.1:8321 [-duration 10s] [-requests 0]
//	           [-rate 0] [-concurrency 8] [-mix run=8,adversary=1,check=1]
//	           [-universe 64] [-zipf 1.2] [-runtime sched] [-seed 1]
//	           [-timeout 10s] [-json bench.json]
//
// The generator builds a fixed universe of distinct request bodies per
// kind and picks among them zipfian (exponent -zipf; <=1 means uniform),
// so a skewed popular set exercises the daemon's result cache the way
// real repeat traffic would. -rate 0 is the closed loop: -concurrency
// workers issue requests back to back. -rate > 0 is the open loop:
// arrivals are scheduled at the target rate and latency is measured from
// the scheduled arrival, so queueing delay counts against the daemon;
// arrivals that find the bounded queue full are counted as shed, not
// silently dropped. The daemon's /vars is scraped before and after the
// run and the serve.* deltas are attributed to this run.
//
// The report is a human table on stdout and, with -json, a machine
// document (latency p50/p90/p99/p999, throughput, cache hit rate,
// per-outcome counts) for benchmark tracking.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	if err := cmdRun(args, out); err != nil {
		fmt.Fprintln(errw, "ksasimload:", err)
		return 1
	}
	return 0
}

// loadConfig is the parsed flag set.
type loadConfig struct {
	addr        string
	duration    time.Duration
	requests    int64 // 0 = unbounded, stop on duration
	rate        float64
	concurrency int
	mix         []kindWeight
	universe    int
	zipf        float64
	runtime     string
	seed        uint64
	timeout     time.Duration
	jsonPath    string
}

type kindWeight struct {
	kind   string
	weight int
}

// request is one prebuilt universe entry: everything a worker needs to
// issue it without allocating or encoding on the hot path.
type request struct {
	kind string
	path string
	body []byte
}

// latencyBuckets covers the serving path in microseconds: sub-100µs
// cache hits up to multi-second jobs.
var latencyBuckets = []int64{
	50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000,
	1000000, 2500000, 5000000, 10000000, 30000000,
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ksasimload", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8321", "daemon base URL")
	duration := fs.Duration("duration", 10*time.Second, "run length (ignored when -requests is hit first)")
	requests := fs.Int64("requests", 0, "stop after this many requests; 0 means run for -duration")
	rate := fs.Float64("rate", 0, "open-loop target arrival rate in req/s; 0 means closed loop")
	concurrency := fs.Int("concurrency", 8, "in-flight request bound")
	mixSpec := fs.String("mix", "run=8,adversary=1,check=1", "request mix as kind=weight[,kind=weight...]")
	universe := fs.Int("universe", 64, "distinct request bodies per kind (zipfian popularity)")
	zipfS := fs.Float64("zipf", 1.2, "zipf exponent over the universe; <=1 means uniform")
	runtimeKind := fs.String("runtime", "sched", "runtime for run requests: sched | net")
	seed := fs.Uint64("seed", 1, "request-selection RNG seed")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request client timeout")
	jsonPath := fs.String("json", "", "write the machine-readable report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("concurrency must be >= 1, got %d", *concurrency)
	}
	if *universe < 1 {
		return fmt.Errorf("universe must be >= 1, got %d", *universe)
	}
	if *runtimeKind != "sched" && *runtimeKind != "net" {
		return fmt.Errorf("runtime must be \"sched\" or \"net\", got %q", *runtimeKind)
	}
	cfg := loadConfig{
		addr: strings.TrimRight(*addr, "/"), duration: *duration, requests: *requests,
		rate: *rate, concurrency: *concurrency, mix: mix, universe: *universe,
		zipf: *zipfS, runtime: *runtimeKind, seed: *seed, timeout: *timeout, jsonPath: *jsonPath,
	}

	client := &http.Client{Timeout: cfg.timeout}
	if _, err := scrapeVars(client, cfg.addr); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", cfg.addr, err)
	}

	reqs, err := buildUniverse(cfg)
	if err != nil {
		return err
	}
	rep, err := drive(cfg, client, reqs)
	if err != nil {
		return err
	}
	writeHuman(out, rep)
	if cfg.jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "ksasimload: report written to %s\n", cfg.jsonPath)
	}
	return nil
}

// parseMix decodes "run=8,adversary=1,check=1" into weighted kinds.
func parseMix(spec string) ([]kindWeight, error) {
	var mix []kindWeight
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, ws, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want kind=weight", part)
		}
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a non-negative integer", part)
		}
		switch kind {
		case "run", "adversary", "check", "explore", "corpus":
		default:
			return nil, fmt.Errorf("mix entry %q: unknown kind (want run, adversary, check, explore, or corpus)", part)
		}
		if w > 0 {
			mix = append(mix, kindWeight{kind, w})
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix %q selects nothing", spec)
	}
	return mix, nil
}

// buildUniverse prebuilds every request body the run will issue. Distinct
// entries normalize to distinct cache keys on the daemon, so zipfian
// popularity over the universe translates directly into a cache hit rate.
func buildUniverse(cfg loadConfig) (map[string][]request, error) {
	kinds := make(map[string]bool, len(cfg.mix))
	for _, kw := range cfg.mix {
		kinds[kw.kind] = true
	}
	out := make(map[string][]request)
	names := broadcast.Names()
	if kinds["run"] {
		rs := make([]request, 0, cfg.universe)
		for i := 0; i < cfg.universe; i++ {
			n := 2 + i%4 // 2..5 processes
			body, err := json.Marshal(map[string]any{
				"candidate": names[i%len(names)],
				"runtime":   cfg.runtime,
				"n":         n,
				"seed":      i / (4 * len(names)), // new seed once candidate×n cycles repeat
				"workload":  map[string]any{"messages": 3 * n},
			})
			if err != nil {
				return nil, err
			}
			rs = append(rs, request{kind: "run", path: "/v1/run", body: body})
		}
		out["run"] = rs
	}
	if kinds["adversary"] {
		var rs []request
		for k := 2; k <= 4; k++ {
			for n := 1; n <= 2; n++ {
				for _, cand := range []string{"first-k", "k-stepped"} {
					body, err := json.Marshal(map[string]any{"candidate": cand, "k": k, "n": n})
					if err != nil {
						return nil, err
					}
					rs = append(rs, request{kind: "adversary", path: "/v1/adversary", body: body})
				}
			}
		}
		if len(rs) > cfg.universe {
			rs = rs[:cfg.universe]
		}
		out["adversary"] = rs
	}
	if kinds["check"] {
		body, err := checkBody()
		if err != nil {
			return nil, err
		}
		out["check"] = []request{{kind: "check", path: "/v1/check?spec=all&k=2", body: body}}
	}
	if kinds["explore"] {
		// Small violation-hunting sweeps, sized so one request is a few
		// hundred milliseconds of sweep work rather than a full hunt. On a
		// coordinator daemon these exercise the whole fabric per request.
		rs := make([]request, 0, cfg.universe)
		for i := 0; i < cfg.universe; i++ {
			body, err := json.Marshal(map[string]any{
				"candidate": "kbo",
				"n":         3 + i%2,
				"strategy":  []string{"random", "pct"}[i%2],
				"schedules": 16,
				"seed":      i,
				"minimize":  -1, // latency-focused: skip delta-debugging
			})
			if err != nil {
				return nil, err
			}
			rs = append(rs, request{kind: "explore", path: "/v1/explore", body: body})
		}
		out["explore"] = rs
	}
	if kinds["corpus"] {
		rs := make([]request, 0, cfg.universe)
		for i := 0; i < cfg.universe; i++ {
			body, err := json.Marshal(map[string]any{"seed": i})
			if err != nil {
				return nil, err
			}
			rs = append(rs, request{kind: "corpus", path: "/v1/corpus", body: body})
		}
		out["corpus"] = rs
	}
	return out, nil
}

// checkBody produces one admissible JSONL trace for /v1/check uploads by
// running a small fifo workload on the deterministic runtime in-process.
func checkBody() ([]byte, error) {
	cand, err := broadcast.Lookup("fifo")
	if err != nil {
		return nil, err
	}
	rt, err := sched.New(sched.Config{N: 3, NewAutomaton: cand.NewAutomaton, Oracle: cand.OracleFor(2)})
	if err != nil {
		return nil, err
	}
	tr, err := rt.RunFair(sched.RunOptions{Broadcasts: []sched.BroadcastReq{
		{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}, {Proc: 3, Payload: "c"},
		{Proc: 1, Payload: "d"}, {Proc: 2, Payload: "e"}, {Proc: 3, Payload: "f"},
	}})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := tr.EncodeJSONL(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// picker selects the next request: a weighted kind choice, then a
// zipfian (or uniform) index into that kind's universe. Each worker owns
// one picker, so selection is contention-free.
type picker struct {
	rng         *rand.Rand
	mix         []kindWeight
	totalWeight int
	reqs        map[string][]request
	zipf        map[string]*rand.Zipf // nil values mean uniform
}

func newPicker(cfg loadConfig, reqs map[string][]request, workerSeed uint64) *picker {
	rng := rand.New(rand.NewPCG(cfg.seed, workerSeed))
	p := &picker{rng: rng, reqs: reqs, zipf: make(map[string]*rand.Zipf)}
	for _, kw := range cfg.mix {
		n := len(reqs[kw.kind])
		if n == 0 {
			// A kind with an empty universe can never be served; dropping it
			// from the weighted choice keeps next() total instead of
			// panicking on a zero-length index. At least one kind must be
			// non-empty (buildUniverse guarantees it for every CLI mix).
			continue
		}
		p.mix = append(p.mix, kw)
		p.totalWeight += kw.weight
		// rand.NewZipf needs s > 1 and imax >= 1: a single-request universe
		// (imax = n-1 = 0) is degenerate, so it falls through to the
		// constant pick in next(), and s <= 1 falls through to uniform.
		if n > 1 && cfg.zipf > 1 {
			p.zipf[kw.kind] = rand.NewZipf(rng, cfg.zipf, 1, uint64(n-1))
		}
	}
	return p
}

func (p *picker) next() request {
	w := p.rng.IntN(p.totalWeight)
	kind := p.mix[len(p.mix)-1].kind
	for _, kw := range p.mix {
		if w < kw.weight {
			kind = kw.kind
			break
		}
		w -= kw.weight
	}
	rs := p.reqs[kind]
	if len(rs) == 1 {
		return rs[0]
	}
	if z := p.zipf[kind]; z != nil {
		return rs[z.Uint64()]
	}
	return rs[p.rng.IntN(len(rs))]
}

// report is the machine-readable result document (-json writes it).
type report struct {
	Benchmark  string  `json:"benchmark"`
	Mode       string  `json:"mode"` // closed | open
	TargetRate float64 `json:"target_rate_rps,omitempty"`
	// RealizedRate is the arrival rate the open-loop pacer actually
	// generated over its pacing window; material drift from TargetRate
	// means the generator itself (not the daemon) was the bottleneck.
	RealizedRate  float64                `json:"realized_rate_rps,omitempty"`
	Concurrency   int                    `json:"concurrency"`
	DurationS     float64                `json:"duration_s"`
	Requests      int64                  `json:"requests"`
	ThroughputRPS float64                `json:"throughput_rps"`
	Latency       latencySummary         `json:"latency_us"`
	PerKind       map[string]kindSummary `json:"per_kind"`
	Outcomes      map[string]int64       `json:"outcomes"`
	Cache         cacheSummary           `json:"cache"`
	Daemon        map[string]int64       `json:"daemon_deltas"`
}

type latencySummary struct {
	P50  int64   `json:"p50"`
	P90  int64   `json:"p90"`
	P99  int64   `json:"p99"`
	P999 int64   `json:"p999"`
	Max  int64   `json:"max"`
	Mean float64 `json:"mean"`
}

type kindSummary struct {
	Requests int64 `json:"requests"`
	P50      int64 `json:"p50_us"`
	P99      int64 `json:"p99_us"`
	Max      int64 `json:"max_us"`
}

type cacheSummary struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Uncached  int64   `json:"uncached"`
	Coalesced int64   `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
}

func summarize(s obs.HistogramSnapshot) latencySummary {
	var mean float64
	if s.Count > 0 {
		mean = float64(s.Sum) / float64(s.Count)
	}
	return latencySummary{
		P50: quantile(s, 0.50), P90: quantile(s, 0.90),
		P99: quantile(s, 0.99), P999: quantile(s, 0.999),
		Max: s.Max, Mean: mean,
	}
}

// quantile clamps the interpolated estimate to the observed maximum: in
// a report the upper quantiles reading above max is just confusing.
func quantile(s obs.HistogramSnapshot, q float64) int64 {
	v := s.Quantile(q)
	if s.Count > 0 && v > s.Max {
		return s.Max
	}
	return v
}

// drive runs the workload and aggregates the report. The measurement
// registry is this repository's own obs package — the same interpolated
// histogram quantiles the daemon serves are used to read the client side.
func drive(cfg loadConfig, client *http.Client, reqs map[string][]request) (*report, error) {
	reg := obs.New()
	total := reg.Histogram("lat.total", latencyBuckets...)
	perKind := make(map[string]*obs.Histogram, len(reqs))
	kindCount := make(map[string]*obs.Counter, len(reqs))
	for kind := range reqs {
		perKind[kind] = reg.Histogram("lat."+kind, latencyBuckets...)
		kindCount[kind] = reg.Counter("reqs." + kind)
	}
	var outMu sync.Mutex
	outcomes := make(map[string]int64)
	cacheStates := make(map[string]int64)
	record := func(kind, outcome, cacheState string, lat time.Duration) {
		if outcome == "ok" {
			total.Observe(lat.Microseconds())
			perKind[kind].Observe(lat.Microseconds())
		}
		kindCount[kind].Inc()
		outMu.Lock()
		outcomes[outcome]++
		if cacheState != "" {
			cacheStates[cacheState]++
		}
		outMu.Unlock()
	}

	before, err := scrapeVars(client, cfg.addr)
	if err != nil {
		return nil, err
	}

	var issued atomic.Int64
	budgetLeft := func() bool {
		if cfg.requests <= 0 {
			return true
		}
		return issued.Add(1) <= cfg.requests
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration)
	defer cancel()

	issue := func(req request, scheduled time.Time) {
		hr, err := http.NewRequestWithContext(ctx, "POST", cfg.addr+req.path, bytes.NewReader(req.body))
		if err != nil {
			record(req.kind, "error", "", 0)
			return
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hr)
		lat := time.Since(scheduled)
		if err != nil {
			if ctx.Err() != nil {
				record(req.kind, "interrupted", "", 0)
			} else {
				record(req.kind, "error", "", 0)
			}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		var outcome string
		switch {
		case resp.StatusCode < 300:
			outcome = "ok"
		case resp.StatusCode == http.StatusTooManyRequests:
			outcome = "rejected_429"
		case resp.StatusCode < 500:
			outcome = fmt.Sprintf("http_%d", resp.StatusCode)
		default:
			outcome = fmt.Sprintf("http_%d", resp.StatusCode)
		}
		record(req.kind, outcome, resp.Header.Get("X-Cache"), lat)
	}

	start := time.Now()
	var wg sync.WaitGroup
	mode := "closed"
	var realizedRate float64
	if cfg.rate > 0 {
		mode = "open"
		// Open loop: arrivals are scheduled at the target rate regardless of
		// completions. Latency is measured from the scheduled arrival, so a
		// daemon that cannot keep up shows it as queueing delay; arrivals
		// that find every worker busy and the queue full are shed.
		arrivals := make(chan time.Time, cfg.concurrency)
		var shed atomic.Int64
		for i := 0; i < cfg.concurrency; i++ {
			wg.Add(1)
			go func(workerSeed uint64) {
				defer wg.Done()
				p := newPicker(cfg, reqs, workerSeed)
				for sched := range arrivals {
					issue(p.next(), sched)
				}
			}(uint64(i) + 2)
		}
		// Arrival i is scheduled at start + i/rate from the absolute start
		// offset. A fixed per-tick interval both truncates to a whole
		// nanosecond count (-rate 3000 → 333,333ns ≈ 3003 rps) and
		// compounds that error every tick; computing each deadline from
		// the start keeps the realized rate within one tick of the target
		// over any horizon.
		var ticks int64
	pace:
		for ctx.Err() == nil && budgetLeft() {
			ticks++
			next := start.Add(time.Duration(float64(ticks) * float64(time.Second) / cfg.rate))
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					ticks--
					break pace
				}
			}
			select {
			case arrivals <- next:
			default:
				shed.Add(1)
			}
		}
		// Realized arrival rate over the pacing window (before worker
		// drain), reported next to the target so drift is visible.
		if paced := time.Since(start); paced > 0 && ticks > 0 {
			realizedRate = float64(ticks) / paced.Seconds()
		}
		close(arrivals)
		wg.Wait()
		if n := shed.Load(); n > 0 {
			outcomes["shed"] = n
		}
	} else {
		// Closed loop: each worker issues back to back; concurrency is the
		// offered load.
		for i := 0; i < cfg.concurrency; i++ {
			wg.Add(1)
			go func(workerSeed uint64) {
				defer wg.Done()
				p := newPicker(cfg, reqs, workerSeed)
				for ctx.Err() == nil && budgetLeft() {
					issue(p.next(), time.Now())
				}
			}(uint64(i) + 2)
		}
		wg.Wait()
	}
	elapsed := time.Since(start)
	cancel()

	after, err := scrapeVars(client, cfg.addr)
	if err != nil {
		return nil, err
	}
	deltas := make(map[string]int64)
	for k, v := range after {
		if d := v - before[k]; d != 0 && strings.HasPrefix(k, "serve.") {
			deltas[k] = d
		}
	}

	var completed int64
	for _, n := range outcomes {
		completed += n
	}
	completed -= outcomes["shed"]
	rep := &report{
		Benchmark:    "ksasimload",
		Mode:         mode,
		TargetRate:   cfg.rate,
		RealizedRate: realizedRate,
		Concurrency:  cfg.concurrency,
		DurationS:    elapsed.Seconds(),
		Requests:     completed,
		Latency:      summarize(total.Snapshot()),
		PerKind:      make(map[string]kindSummary, len(perKind)),
		Outcomes:     outcomes,
		Daemon:       deltas,
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(outcomes["ok"]) / elapsed.Seconds()
	}
	for kind, h := range perKind {
		s := h.Snapshot()
		rep.PerKind[kind] = kindSummary{
			Requests: kindCount[kind].Value(),
			P50:      quantile(s, 0.50), P99: quantile(s, 0.99), Max: s.Max,
		}
	}
	rep.Cache = cacheSummary{
		Hits: cacheStates["hit"], Misses: cacheStates["miss"],
		Uncached: cacheStates["uncached"], Coalesced: cacheStates["coalesced"],
	}
	if served := rep.Cache.Hits + rep.Cache.Misses; served > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(served)
	}
	return rep, nil
}

// scrapeVars fetches the daemon's /vars JSON counter+gauge map.
func scrapeVars(client *http.Client, addr string) (map[string]int64, error) {
	resp, err := client.Get(addr + "/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /vars: status %d", resp.StatusCode)
	}
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("GET /vars: %w", err)
	}
	return m, nil
}

func writeHuman(out io.Writer, rep *report) {
	fmt.Fprintf(out, "ksasimload: %d requests in %.2fs (%.1f ok rps), mode=%s concurrency=%d",
		rep.Requests, rep.DurationS, rep.ThroughputRPS, rep.Mode, rep.Concurrency)
	if rep.Mode == "open" {
		fmt.Fprintf(out, " target=%.1f rps realized=%.1f rps", rep.TargetRate, rep.RealizedRate)
	}
	fmt.Fprintln(out)
	l := rep.Latency
	fmt.Fprintf(out, "  latency us: p50=%d p90=%d p99=%d p999=%d max=%d mean=%.1f\n",
		l.P50, l.P90, l.P99, l.P999, l.Max, l.Mean)
	kinds := make([]string, 0, len(rep.PerKind))
	for k := range rep.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(out, "  %-10s %8s %10s %10s %10s\n", "kind", "reqs", "p50_us", "p99_us", "max_us")
	for _, k := range kinds {
		s := rep.PerKind[k]
		fmt.Fprintf(out, "  %-10s %8d %10d %10d %10d\n", k, s.Requests, s.P50, s.P99, s.Max)
	}
	fmt.Fprintf(out, "  outcomes:%s\n", formatCounts(rep.Outcomes))
	fmt.Fprintf(out, "  cache: hits=%d misses=%d uncached=%d coalesced=%d hit_rate=%.3f\n",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.Uncached, rep.Cache.Coalesced, rep.Cache.HitRate)
	fmt.Fprintf(out, "  daemon deltas:%s\n", formatCounts(rep.Daemon))
}

func formatCounts(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, m[k])
	}
	if b.Len() == 0 {
		return " none"
	}
	return b.String()
}
