package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nobroadcast/internal/serve"
)

func testDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{Workers: 4}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClosedLoop is the end-to-end run: a fixed request budget against an
// in-process daemon, human table on stdout, and a parseable JSON report
// with nonzero throughput — the same contract make load-smoke checks.
func TestClosedLoop(t *testing.T) {
	ts := testDaemon(t)
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := cmdRun([]string{
		"-addr", ts.URL, "-requests", "60", "-concurrency", "4",
		"-duration", "30s", "-universe", "8", "-seed", "7", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("cmdRun: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"ksasimload:", "latency us:", "cache:", "daemon deltas:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("human output missing %q:\n%s", want, out.String())
		}
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, b)
	}
	if rep.Benchmark != "ksasimload" || rep.Mode != "closed" {
		t.Errorf("benchmark/mode = %q/%q", rep.Benchmark, rep.Mode)
	}
	if rep.Requests != 60 {
		t.Errorf("requests = %d, want 60", rep.Requests)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %v, want > 0", rep.ThroughputRPS)
	}
	if rep.Outcomes["ok"] != 60 {
		t.Errorf("outcomes = %v, want 60 ok", rep.Outcomes)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	// A zipfian draw over 8 bodies across 60 requests repeats some of
	// them, so the daemon's cache must have been hit.
	if rep.Cache.Hits == 0 || rep.Cache.HitRate <= 0 {
		t.Errorf("no cache hits recorded: %+v", rep.Cache)
	}
	if rep.Daemon["serve.cache_hits"] != rep.Cache.Hits {
		t.Errorf("daemon delta serve.cache_hits = %d, client saw %d",
			rep.Daemon["serve.cache_hits"], rep.Cache.Hits)
	}
	if rep.PerKind["run"].Requests == 0 {
		t.Errorf("per-kind summary missing runs: %v", rep.PerKind)
	}
}

// TestOpenLoop: the paced mode issues at a target rate and reports
// mode=open with the target.
func TestOpenLoop(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := cmdRun([]string{
		"-addr", ts.URL, "-rate", "200", "-duration", "300ms",
		"-concurrency", "4", "-universe", "4", "-mix", "run=1",
	}, &out)
	if err != nil {
		t.Fatalf("cmdRun: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mode=open") || !strings.Contains(out.String(), "target=200.0 rps") {
		t.Errorf("open-loop header missing:\n%s", out.String())
	}
}

// TestCheckOnlyMix: a pure check mix exercises the upload path.
func TestCheckOnlyMix(t *testing.T) {
	ts := testDaemon(t)
	var out bytes.Buffer
	err := cmdRun([]string{
		"-addr", ts.URL, "-requests", "5", "-concurrency", "2",
		"-duration", "30s", "-mix", "check=1",
	}, &out)
	if err != nil {
		t.Fatalf("cmdRun: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "check") {
		t.Errorf("check kind missing from output:\n%s", out.String())
	}
}

func TestParseMix(t *testing.T) {
	good, err := parseMix("run=8, adversary=1,check=0")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	if len(good) != 2 || good[0].kind != "run" || good[0].weight != 8 || good[1].kind != "adversary" {
		t.Errorf("parseMix = %+v", good)
	}
	for _, bad := range []string{"", "run", "run=x", "run=-1", "teapot=1", "check=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// TestBadFlags: an unreachable daemon and invalid flags are error exits.
func TestBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	for _, args := range [][]string{
		{"-addr", "http://127.0.0.1:1", "-duration", "1s"}, // nothing listens on port 1
		{"-concurrency", "0"},
		{"-runtime", "quantum"},
		{"-universe", "0"},
		{"-mix", "bogus"},
	} {
		if code := run(args, &out, &errw); code != 1 {
			t.Errorf("args %v: exit %d, want 1", args, code)
		}
	}
	if !strings.Contains(errw.String(), "ksasimload:") {
		t.Errorf("stderr = %q, want ksasimload: prefix", errw.String())
	}
}

// TestPickerDegenerateUniverses: the zipf sampler's domain is s > 1 and
// imax >= 1, and the weighted choice's domain is a nonzero total weight.
// Single-request and empty universes must route around both rather than
// panic (regression: an empty kind used to reach rng.IntN(0)).
func TestPickerDegenerateUniverses(t *testing.T) {
	// A one-request universe with a skewed zipf exponent: every pick is
	// the constant entry, no rand.NewZipf construction with imax=0.
	one := loadConfig{
		mix:  []kindWeight{{kind: "run", weight: 1}},
		zipf: 1.2,
		seed: 1,
	}
	p := newPicker(one, map[string][]request{"run": {{kind: "run", path: "/only"}}}, 0)
	for i := 0; i < 32; i++ {
		if got := p.next(); got.path != "/only" {
			t.Fatalf("pick %d = %q, want the single entry", i, got.path)
		}
	}

	// A kind whose universe is empty is dropped from the mix; the
	// surviving kind absorbs every pick.
	mixed := loadConfig{
		mix:  []kindWeight{{kind: "check", weight: 9}, {kind: "run", weight: 1}},
		zipf: 1.2,
		seed: 1,
	}
	p = newPicker(mixed, map[string][]request{
		"check": nil,
		"run":   {{kind: "run", path: "/a"}, {kind: "run", path: "/b"}},
	}, 0)
	if p.totalWeight != 1 || len(p.mix) != 1 || p.mix[0].kind != "run" {
		t.Fatalf("empty-universe kind not dropped: mix=%+v total=%d", p.mix, p.totalWeight)
	}
	for i := 0; i < 32; i++ {
		if got := p.next(); got.kind != "run" {
			t.Fatalf("pick %d drew dropped kind %q", i, got.kind)
		}
	}
}

// TestOpenLoopRealizedRate: the open-loop report carries the arrival
// rate the pacer actually achieved, and the human header prints it; on
// an idle in-process daemon a 200 rps target should be realized within
// a loose factor (the field exists to expose drift, not hide it).
func TestOpenLoopRealizedRate(t *testing.T) {
	ts := testDaemon(t)
	jsonPath := filepath.Join(t.TempDir(), "open.json")
	var out bytes.Buffer
	err := cmdRun([]string{
		"-addr", ts.URL, "-rate", "200", "-duration", "500ms",
		"-concurrency", "4", "-universe", "4", "-mix", "run=1",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("cmdRun: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "realized=") {
		t.Errorf("human output missing realized rate:\n%s", out.String())
	}
	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, b)
	}
	if rep.RealizedRate <= 0 {
		t.Fatalf("realized_rate_rps = %v, want > 0", rep.RealizedRate)
	}
	// Absolute-offset scheduling keeps long-run drift at zero; allow wide
	// slack for CI jitter but catch the old compounding-interval bug,
	// which undershot badly at coarse timer granularities.
	if rep.RealizedRate < 100 || rep.RealizedRate > 400 {
		t.Errorf("realized rate %.1f rps drifted far from 200 rps target", rep.RealizedRate)
	}
}
