// Command checker validates recorded execution traces against the
// machine-checkable specifications, and runs the paper's two symmetry
// testers (compositionality, Definition 2; content-neutrality,
// Definition 3) against a spec on a given trace.
//
// Usage:
//
//	checker -spec kbo -k 2 [-symmetry] [-seed 1] [-metrics] [-events out.jsonl] trace.json
//	checker -spec fifo -stream trace.jsonl     # or trace.ktr, or "-" for stdin
//
// The trace file is the JSON produced by `adversary -json` or by the
// trace package. With -stream the input is either wire format — binary
// ksatrace (cmd/ksatrace, /v1/jobs/{id}/trace) or JSONL (one header
// line, one step per line), auto-detected — and is checked
// incrementally: only online checker state is resident, so traces of any
// length fit in constant memory. Spec
// names are the registry keys (spec.Names); the classics: well-formed,
// channels, basic, send-to-all, fifo, causal, total-order, kbo,
// k-stepped, first-k, sa-tagged, mutual, uniform-reliable, scd, ksa.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// errRejected signals an inadmissible trace (exit code 2, distinguishing
// "checked and rejected" from tool errors).
var errRejected = errors.New("trace rejected")

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run maps the command body to a process exit code (2 = trace rejected,
// 1 = tool error). The body defers its observability flush, so a failing
// invocation — rejected trace or tool error alike — still emits the
// -metrics summary and finalizes the -events log before the process
// exits.
func run(args []string, out, errw io.Writer) int {
	err := cmdRun(args, out)
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errRejected):
		return 2
	default:
		fmt.Fprintln(errw, "checker:", err)
		return 1
	}
}

// specByName resolves a specification name against the spec registry.
func specByName(name string, k int) (spec.Spec, error) {
	s, err := spec.ByName(name, k)
	if err != nil {
		return nil, fmt.Errorf("%w (known: %s)", err, strings.Join(spec.Names(), ", "))
	}
	return s, nil
}

// runStream checks a step stream incrementally, without ever
// materializing the trace. Both wire formats are accepted — binary
// ksatrace streams and JSONL are sniffed apart by NewAnyReader. The
// verdict reports the index of the step that latched the violation, when
// the checker knows it.
func runStream(s spec.Spec, r io.Reader, reg *obs.Registry, out io.Writer) error {
	sr, err := trace.NewAnyReader(r)
	if err != nil {
		return err
	}
	hdr := sr.Header()
	fmt.Fprintf(out, "stream %q: %d processes, complete=%v\n", hdr.Name, hdr.N, hdr.Complete)
	c := spec.NewCheckerFor(s, hdr.N)
	sp := reg.StartSpan("checker.stream")
	steps := 0
	// The span and step count are recorded even when the stream errors
	// out mid-way (truncated or corrupt input) — partial progress is
	// telemetry too.
	defer func() {
		sp.End()
		reg.Counter("checker.steps").Add(int64(steps))
	}()
	var v *spec.Violation
	violIdx := -1
	for {
		st, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if v == nil {
			if v = c.Feed(st); v != nil {
				violIdx = steps
			}
		}
		steps++
	}
	if v == nil {
		v = c.Finish(hdr.Complete)
	}
	reg.Emit("checker.verdict", obs.Str("spec", s.Name()), obs.Int("rejected", boolInt(v != nil)))
	fmt.Fprintf(out, "checked %d steps online\n", steps)
	if v != nil {
		if v.StepIdx < 0 && violIdx >= 0 {
			fmt.Fprintf(out, "REJECTED by %s (latched at step %d):\n  %s\n", s.Name(), violIdx, v)
		} else {
			fmt.Fprintf(out, "REJECTED by %s:\n  %s\n", s.Name(), v)
		}
		return errRejected
	}
	fmt.Fprintf(out, "admitted by %s\n", s.Name())
	return nil
}

func cmdRun(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("checker", flag.ContinueOnError)
	specName := fs.String("spec", "basic", "specification to check")
	k := fs.Int("k", 2, "agreement/ordering degree for parameterized specs")
	symmetry := fs.Bool("symmetry", false, "also run the compositionality and content-neutrality testers")
	stream := fs.Bool("stream", false, "input is JSONL; check it incrementally (\"-\" reads stdin)")
	seed := fs.Uint64("seed", 1, "seed for the symmetry testers' generators")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: checker [-spec name] [-k K] [-symmetry | -stream] trace.json")
	}
	if *stream && *symmetry {
		return fmt.Errorf("-symmetry needs the whole trace; it cannot be combined with -stream")
	}
	// The sinks flush on every exit path — a rejected trace or a failing
	// run keeps its telemetry instead of losing it to an early return.
	defer func() {
		if ferr := oc.Finish(out); err == nil {
			err = ferr
		}
	}()
	reg, err := oc.Registry()
	if err != nil {
		return err
	}

	if *stream {
		s, err := specByName(*specName, *k)
		if err != nil {
			return err
		}
		in := io.Reader(os.Stdin)
		if fs.Arg(0) != "-" {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		return runStream(s, in, reg, out)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	sp := reg.StartSpan("checker.decode")
	tr, err := trace.DecodeJSON(f)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %q: %d processes, %d steps, complete=%v\n", tr.Name, tr.X.N, tr.X.Len(), tr.Complete)
	reg.Counter("checker.steps").Add(int64(tr.X.Len()))

	s, err := specByName(*specName, *k)
	if err != nil {
		return err
	}
	sp = reg.StartSpan("checker.spec")
	v := s.Check(tr)
	sp.End()
	reg.Emit("checker.verdict", obs.Str("spec", s.Name()), obs.Int("rejected", boolInt(v != nil)))
	if v != nil {
		fmt.Fprintf(out, "REJECTED by %s:\n  %s\n", s.Name(), v)
		return errRejected
	}
	fmt.Fprintf(out, "admitted by %s\n", s.Name())

	if *symmetry {
		opts := spec.SymmetryOptions{Seed: *seed}
		sp = reg.StartSpan("checker.compositionality")
		comp, err := spec.CheckCompositional(s, tr, opts)
		sp.End()
		if err != nil {
			return err
		}
		if comp.Holds {
			fmt.Fprintf(out, "compositionality: held on %d restrictions\n", comp.Checked)
		} else {
			fmt.Fprintf(out, "compositionality: REFUTED by message subset %v:\n  %s\n", comp.WitnessSubset, comp.Violation)
		}
		sp = reg.StartSpan("checker.content_neutrality")
		cn, err := spec.CheckContentNeutral(s, tr, opts)
		sp.End()
		if err != nil {
			return err
		}
		if cn.Holds {
			fmt.Fprintf(out, "content-neutrality: held on %d renamings\n", cn.Checked)
		} else {
			fmt.Fprintf(out, "content-neutrality: REFUTED by renaming %v:\n  %s\n", cn.WitnessRenaming, cn.Violation)
		}
	}
	return nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
