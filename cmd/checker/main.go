// Command checker validates recorded execution traces against the
// machine-checkable specifications, and runs the paper's two symmetry
// testers (compositionality, Definition 2; content-neutrality,
// Definition 3) against a spec on a given trace.
//
// Usage:
//
//	checker -spec kbo -k 2 [-symmetry] [-seed 1] [-metrics] [-events out.jsonl] trace.json
//
// The trace file is the JSON produced by `adversary -json` or by the
// trace package. Spec names: well-formed, channels, basic, send-to-all,
// fifo, causal, total-order, kbo, k-stepped, first-k, sa-tagged,
// mutual, uniform-reliable, ksa.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// errRejected signals an inadmissible trace (exit code 2, distinguishing
// "checked and rejected" from tool errors).
var errRejected = errors.New("trace rejected")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errRejected) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "checker:", err)
		os.Exit(1)
	}
}

// specByName resolves a specification name.
func specByName(name string, k int) (spec.Spec, error) {
	switch name {
	case "well-formed":
		return spec.WellFormed(), nil
	case "channels":
		return spec.Channels(), nil
	case "basic", "send-to-all":
		return spec.SendToAll(), nil
	case "fifo":
		return spec.FIFOBroadcast(), nil
	case "causal":
		return spec.CausalBroadcast(), nil
	case "total-order":
		return spec.TotalOrderBroadcast(), nil
	case "kbo":
		return spec.KBOBroadcast(k), nil
	case "k-stepped":
		return spec.KSteppedBroadcast(k), nil
	case "first-k":
		return spec.FirstKBroadcast(k), nil
	case "sa-tagged":
		return spec.SATaggedBroadcast(k), nil
	case "mutual":
		return spec.MutualBroadcast(), nil
	case "uniform-reliable":
		return spec.UniformReliable(), nil
	case "scd":
		return spec.SCDBroadcast(), nil
	case "ksa":
		return spec.KSA(k), nil
	default:
		return nil, fmt.Errorf("unknown spec %q", name)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("checker", flag.ContinueOnError)
	specName := fs.String("spec", "basic", "specification to check")
	k := fs.Int("k", 2, "agreement/ordering degree for parameterized specs")
	symmetry := fs.Bool("symmetry", false, "also run the compositionality and content-neutrality testers")
	seed := fs.Uint64("seed", 1, "seed for the symmetry testers' generators")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: checker [-spec name] [-k K] [-symmetry] trace.json")
	}
	reg, err := oc.Registry()
	if err != nil {
		return err
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	sp := reg.StartSpan("checker.decode")
	tr, err := trace.DecodeJSON(f)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %q: %d processes, %d steps, complete=%v\n", tr.Name, tr.X.N, tr.X.Len(), tr.Complete)
	reg.Counter("checker.steps").Add(int64(tr.X.Len()))

	s, err := specByName(*specName, *k)
	if err != nil {
		return err
	}
	sp = reg.StartSpan("checker.spec")
	v := s.Check(tr)
	sp.End()
	reg.Emit("checker.verdict", obs.Str("spec", s.Name()), obs.Int("rejected", boolInt(v != nil)))
	if v != nil {
		fmt.Fprintf(out, "REJECTED by %s:\n  %s\n", s.Name(), v)
		oc.Finish(out)
		return errRejected
	}
	fmt.Fprintf(out, "admitted by %s\n", s.Name())

	if *symmetry {
		opts := spec.SymmetryOptions{Seed: *seed}
		sp = reg.StartSpan("checker.compositionality")
		comp, err := spec.CheckCompositional(s, tr, opts)
		sp.End()
		if err != nil {
			return err
		}
		if comp.Holds {
			fmt.Fprintf(out, "compositionality: held on %d restrictions\n", comp.Checked)
		} else {
			fmt.Fprintf(out, "compositionality: REFUTED by message subset %v:\n  %s\n", comp.WitnessSubset, comp.Violation)
		}
		sp = reg.StartSpan("checker.content_neutrality")
		cn, err := spec.CheckContentNeutral(s, tr, opts)
		sp.End()
		if err != nil {
			return err
		}
		if cn.Holds {
			fmt.Fprintf(out, "content-neutrality: held on %d renamings\n", cn.Checked)
		} else {
			fmt.Fprintf(out, "content-neutrality: REFUTED by renaming %v:\n  %s\n", cn.WitnessRenaming, cn.Violation)
		}
	}
	return oc.Finish(out)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
