// Command checker validates recorded execution traces against the
// machine-checkable specifications, and runs the paper's two symmetry
// testers (compositionality, Definition 2; content-neutrality,
// Definition 3) against a spec on a given trace.
//
// Usage:
//
//	checker -spec kbo -k 2 [-symmetry] [-seed 1] [-metrics] [-events out.jsonl] trace.json
//	checker -spec fifo -stream trace.jsonl     # or "-" for stdin
//
// The trace file is the JSON produced by `adversary -json` or by the
// trace package. With -stream the input is JSONL (one header line, one
// step per line) and is checked incrementally: only online checker state
// is resident, so traces of any length fit in constant memory. Spec
// names are the registry keys (spec.Names); the classics: well-formed,
// channels, basic, send-to-all, fifo, causal, total-order, kbo,
// k-stepped, first-k, sa-tagged, mutual, uniform-reliable, scd, ksa.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// errRejected signals an inadmissible trace (exit code 2, distinguishing
// "checked and rejected" from tool errors).
var errRejected = errors.New("trace rejected")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errRejected) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "checker:", err)
		os.Exit(1)
	}
}

// specByName resolves a specification name against the spec registry.
func specByName(name string, k int) (spec.Spec, error) {
	s, err := spec.ByName(name, k)
	if err != nil {
		return nil, fmt.Errorf("%w (known: %s)", err, strings.Join(spec.Names(), ", "))
	}
	return s, nil
}

// runStream checks a JSONL step stream incrementally, without ever
// materializing the trace. The verdict reports the index of the step
// that latched the violation, when the checker knows it.
func runStream(s spec.Spec, r io.Reader, reg *obs.Registry, out io.Writer) error {
	sr, err := trace.NewStepReader(r)
	if err != nil {
		return err
	}
	hdr := sr.Header()
	fmt.Fprintf(out, "stream %q: %d processes, complete=%v\n", hdr.Name, hdr.N, hdr.Complete)
	c := spec.NewCheckerFor(s, hdr.N)
	sp := reg.StartSpan("checker.stream")
	steps := 0
	var v *spec.Violation
	violIdx := -1
	for {
		st, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sp.End()
			return err
		}
		if v == nil {
			if v = c.Feed(st); v != nil {
				violIdx = steps
			}
		}
		steps++
	}
	if v == nil {
		v = c.Finish(hdr.Complete)
	}
	sp.End()
	reg.Counter("checker.steps").Add(int64(steps))
	reg.Emit("checker.verdict", obs.Str("spec", s.Name()), obs.Int("rejected", boolInt(v != nil)))
	fmt.Fprintf(out, "checked %d steps online\n", steps)
	if v != nil {
		if v.StepIdx < 0 && violIdx >= 0 {
			fmt.Fprintf(out, "REJECTED by %s (latched at step %d):\n  %s\n", s.Name(), violIdx, v)
		} else {
			fmt.Fprintf(out, "REJECTED by %s:\n  %s\n", s.Name(), v)
		}
		return errRejected
	}
	fmt.Fprintf(out, "admitted by %s\n", s.Name())
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("checker", flag.ContinueOnError)
	specName := fs.String("spec", "basic", "specification to check")
	k := fs.Int("k", 2, "agreement/ordering degree for parameterized specs")
	symmetry := fs.Bool("symmetry", false, "also run the compositionality and content-neutrality testers")
	stream := fs.Bool("stream", false, "input is JSONL; check it incrementally (\"-\" reads stdin)")
	seed := fs.Uint64("seed", 1, "seed for the symmetry testers' generators")
	oc := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: checker [-spec name] [-k K] [-symmetry | -stream] trace.json")
	}
	if *stream && *symmetry {
		return fmt.Errorf("-symmetry needs the whole trace; it cannot be combined with -stream")
	}
	reg, err := oc.Registry()
	if err != nil {
		return err
	}

	if *stream {
		s, err := specByName(*specName, *k)
		if err != nil {
			return err
		}
		in := io.Reader(os.Stdin)
		if fs.Arg(0) != "-" {
			f, err := os.Open(fs.Arg(0))
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		if err := runStream(s, in, reg, out); err != nil {
			if errors.Is(err, errRejected) {
				oc.Finish(out)
			}
			return err
		}
		return oc.Finish(out)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	sp := reg.StartSpan("checker.decode")
	tr, err := trace.DecodeJSON(f)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace %q: %d processes, %d steps, complete=%v\n", tr.Name, tr.X.N, tr.X.Len(), tr.Complete)
	reg.Counter("checker.steps").Add(int64(tr.X.Len()))

	s, err := specByName(*specName, *k)
	if err != nil {
		return err
	}
	sp = reg.StartSpan("checker.spec")
	v := s.Check(tr)
	sp.End()
	reg.Emit("checker.verdict", obs.Str("spec", s.Name()), obs.Int("rejected", boolInt(v != nil)))
	if v != nil {
		fmt.Fprintf(out, "REJECTED by %s:\n  %s\n", s.Name(), v)
		oc.Finish(out)
		return errRejected
	}
	fmt.Fprintf(out, "admitted by %s\n", s.Name())

	if *symmetry {
		opts := spec.SymmetryOptions{Seed: *seed}
		sp = reg.StartSpan("checker.compositionality")
		comp, err := spec.CheckCompositional(s, tr, opts)
		sp.End()
		if err != nil {
			return err
		}
		if comp.Holds {
			fmt.Fprintf(out, "compositionality: held on %d restrictions\n", comp.Checked)
		} else {
			fmt.Fprintf(out, "compositionality: REFUTED by message subset %v:\n  %s\n", comp.WitnessSubset, comp.Violation)
		}
		sp = reg.StartSpan("checker.content_neutrality")
		cn, err := spec.CheckContentNeutral(s, tr, opts)
		sp.End()
		if err != nil {
			return err
		}
		if cn.Holds {
			fmt.Fprintf(out, "content-neutrality: held on %d renamings\n", cn.Checked)
		} else {
			fmt.Fprintf(out, "content-neutrality: REFUTED by renaming %v:\n  %s\n", cn.WitnessRenaming, cn.Violation)
		}
	}
	return oc.Finish(out)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
