package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// writeTrace stores a trace as JSON in a temp file.
func writeTrace(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.EncodeJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func admissibleTrace() *trace.Trace {
	x := model.NewExecution(2)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
	)
	return &trace.Trace{X: x, Complete: true, Name: "t"}
}

func violatingTrace() *trace.Trace {
	x := model.NewExecution(2)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 2, Msg: 9, Payload: "ghost"},
	)
	return &trace.Trace{X: x, Name: "bad"}
}

func TestCheckerAdmits(t *testing.T) {
	path := writeTrace(t, admissibleTrace())
	var out bytes.Buffer
	if err := cmdRun([]string{"-spec", "total-order", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "admitted by Total-Order-Broadcast") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCheckerRejects(t *testing.T) {
	path := writeTrace(t, violatingTrace())
	var out bytes.Buffer
	err := cmdRun([]string{"-spec", "basic", path}, &out)
	if !errors.Is(err, errRejected) {
		t.Fatalf("expected errRejected, got %v", err)
	}
	if !strings.Contains(out.String(), "REJECTED") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCheckerSymmetry(t *testing.T) {
	path := writeTrace(t, admissibleTrace())
	var out bytes.Buffer
	if err := cmdRun([]string{"-spec", "kbo", "-k", "2", "-symmetry", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "compositionality: held") || !strings.Contains(s, "content-neutrality: held") {
		t.Errorf("output:\n%s", s)
	}
}

func TestCheckerAllSpecNames(t *testing.T) {
	names := []string{"well-formed", "channels", "basic", "send-to-all", "fifo",
		"causal", "total-order", "kbo", "k-stepped", "first-k", "sa-tagged",
		"mutual", "uniform-reliable", "scd", "ksa"}
	for _, n := range names {
		if _, err := specByName(n, 2); err != nil {
			t.Errorf("specByName(%q): %v", n, err)
		}
	}
	if _, err := specByName("bogus", 2); err == nil {
		t.Error("expected error for bogus spec")
	}
}

func TestCheckerBadUsage(t *testing.T) {
	var out bytes.Buffer
	if err := cmdRun(nil, &out); err == nil {
		t.Error("expected usage error without a trace file")
	}
	if err := cmdRun([]string{"/nonexistent/file.json"}, &out); err == nil {
		t.Error("expected error for missing file")
	}
	path := writeTrace(t, admissibleTrace())
	if err := cmdRun([]string{"-spec", "bogus", path}, &out); err == nil {
		t.Error("expected error for unknown spec")
	}
}

func TestCheckerMetricsAndEvents(t *testing.T) {
	path := writeTrace(t, admissibleTrace())
	events := filepath.Join(t.TempDir(), "events.jsonl")
	var out bytes.Buffer
	if err := cmdRun([]string{"-spec", "kbo", "-k", "2", "-symmetry", "-metrics", "-events", events, path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, w := range []string{
		"checker.decode",
		"checker.spec",
		"checker.compositionality",
		"checker.content_neutrality",
		"checker.steps",
	} {
		if !strings.Contains(s, w) {
			t.Errorf("metrics output missing %q:\n%s", w, s)
		}
	}
	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatalf("reading event log: %v", err)
	}
	if !strings.Contains(string(data), `"event":"checker.verdict"`) {
		t.Errorf("event log missing checker.verdict:\n%s", data)
	}
}

func TestCheckerMetricsOnRejection(t *testing.T) {
	// The summary must still be rendered when the trace is rejected.
	path := writeTrace(t, violatingTrace())
	var out bytes.Buffer
	err := cmdRun([]string{"-spec", "basic", "-metrics", path}, &out)
	if !errors.Is(err, errRejected) {
		t.Fatalf("expected errRejected, got %v", err)
	}
	if !strings.Contains(out.String(), "checker.spec") {
		t.Errorf("metrics summary missing on rejection:\n%s", out.String())
	}
}

// writeTraceJSONL stores a trace in streaming JSONL form.
func writeTraceJSONL(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.EncodeJSONL(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckerStreamAdmits(t *testing.T) {
	path := writeTraceJSONL(t, admissibleTrace())
	var out bytes.Buffer
	if err := cmdRun([]string{"-spec", "fifo", "-stream", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "checked 4 steps online") || !strings.Contains(s, "admitted by FIFO-Broadcast") {
		t.Errorf("output:\n%s", s)
	}
}

func TestCheckerStreamRejects(t *testing.T) {
	path := writeTraceJSONL(t, violatingTrace())
	var out bytes.Buffer
	err := cmdRun([]string{"-spec", "basic", "-stream", path}, &out)
	if !errors.Is(err, errRejected) {
		t.Fatalf("expected errRejected, got %v", err)
	}
	if !strings.Contains(out.String(), "REJECTED") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestCheckerStreamExcludesSymmetry(t *testing.T) {
	path := writeTraceJSONL(t, admissibleTrace())
	var out bytes.Buffer
	if err := cmdRun([]string{"-spec", "fifo", "-stream", "-symmetry", path}, &out); err == nil {
		t.Error("expected -stream/-symmetry conflict error")
	}
}

// TestCheckerExitCodes: run maps outcomes to process exit codes — 0
// admitted, 2 rejected, 1 tool error.
func TestCheckerExitCodes(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-spec", "fifo", writeTrace(t, admissibleTrace())}, &out, &errw); code != 0 {
		t.Errorf("admitted trace: exit %d, want 0\n%s", code, errw.String())
	}
	if code := run([]string{"-spec", "basic", writeTrace(t, violatingTrace())}, &out, &errw); code != 2 {
		t.Errorf("rejected trace: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/file.json"}, &out, &errw); code != 1 {
		t.Errorf("tool error: exit %d, want 1", code)
	}
}

// TestCheckerTruncatedStreamStillEmitsMetrics: a truncated JSONL upload is
// a distinct truncation error (not a generic decode failure), and the
// failing invocation still flushes its -metrics summary via the deferred
// flush in cmdRun.
func TestCheckerTruncatedStreamStillEmitsMetrics(t *testing.T) {
	path := writeTraceJSONL(t, admissibleTrace())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.jsonl")
	if err := os.WriteFile(cut, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	code := run([]string{"-spec", "fifo", "-stream", "-metrics", cut}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr: %s", code, errw.String())
	}
	if !strings.Contains(errw.String(), "truncated") {
		t.Errorf("stderr does not name the truncation:\n%s", errw.String())
	}
	s := out.String()
	for _, w := range []string{"-- spans", "checker.stream", "-- counters", "checker.steps"} {
		if !strings.Contains(s, w) {
			t.Errorf("failed run lost its metrics summary (missing %q):\n%s", w, s)
		}
	}
}
