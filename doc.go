// Package nobroadcast is the root of a reproduction, as a Go library, of
// "No Broadcast Abstraction Characterizes k-Set-Agreement in
// Message-Passing Systems" (Gay, Mostéfaoui, Perrin — PODC 2024 brief
// announcement; HAL extended version hal-04571653).
//
// The library makes every constructive ingredient of the paper's
// impossibility proof executable:
//
//   - internal/model, internal/trace: the execution formalism of Section 2
//     and the three transformations the proof uses (restriction, injective
//     renaming, projection), with recorded traces and diagrams;
//   - internal/spec: machine-checkable specifications for channels,
//     broadcast abstractions, ordering predicates and k-set agreement,
//     plus testers for the paper's two symmetry properties
//     (compositionality, Definition 2; content-neutrality, Definition 3);
//   - internal/sched: the deterministic step-driven runtime of
//     CAMP_n[k-SA]; internal/net: the concurrent goroutine runtime;
//   - internal/broadcast: candidate broadcast abstractions (send-to-all,
//     reliable, FIFO, causal, total order, and the paper's three strawmen
//     plus a doomed k-BO attempt) with their k-SA solvers;
//   - internal/adversary: Algorithm 1, transcribed line by line, with
//     mechanical verification of Lemmas 1-8 and 10;
//   - internal/core: the Theorem 1 pipeline (Lemma 9's restriction,
//     renaming, and replay) reporting which hypothesis fails for each
//     candidate;
//   - internal/sharedmem: the CARW_n[k-SA] model and the k-SA ⇔ k-SC
//     equivalence grounding the paper's shared-memory contrast.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the figure/experiment reproduction records. The
// benchmark harness regenerating them lives in bench_test.go.
package nobroadcast
