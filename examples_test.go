package nobroadcast_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The examples are runnable mains; these tests execute each one end to end
// (guarded by -short: they shell out to the go tool) and assert on the
// load-bearing lines of their output.

func runExample(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	ctxCmd := exec.Command("go", "run", "./examples/"+name)
	ctxCmd.Dir = "."
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		defer close(done)
		out, err = ctxCmd.CombinedOutput()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		_ = ctxCmd.Process.Kill()
		<-done
		t.Fatalf("example %s timed out", name)
	}
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", name, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{
		"p1 delivered 8 message(s)",
		"p5 delivered 0 message(s)",
		"BC-Global-CS-Termination",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExampleFigure1(t *testing.T) {
	out := runExample(t, "figure1")
	for _, want := range []string{
		"Lemma 10 (beta is N-solo)",
		"Space-time diagram",
		"2-solo (Definition 5)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Errorf("a lemma check failed:\n%s", out)
	}
}

func TestExampleComposition(t *testing.T) {
	out := runExample(t, "composition")
	for _, want := range []string{
		"is NOT",
		"composition-safe on this workload",
		"k-Stepped Broadcast is not compositional",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExampleImpossibility(t *testing.T) {
	out := runExample(t, "impossibility")
	for _, want := range []string{
		"Stage 7",
		"Theorem 1 contradiction",
		"k-BO broadcast cannot be implemented on top of k-SA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExampleSharedMemory(t *testing.T) {
	out := runExample(t, "sharedmemory")
	for _, want := range []string{
		"k-SA -> k-SC",
		"index agreement, validity — ok",
		"wait-free",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExampleSMR(t *testing.T) {
	out := runExample(t, "smr")
	for _, want := range []string{
		"total-order :  1 state(s) x40",
		"kbo",
		"SMR needs Total Order",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestExampleCausalMemory(t *testing.T) {
	out := runExample(t, "causalmemory")
	if !strings.Contains(out, "causal      :   0/200 runs with a causal anomaly") {
		t.Errorf("causal broadcast must show zero anomalies:\n%s", out)
	}
	if !strings.Contains(out, "send-to-all") {
		t.Errorf("missing baseline:\n%s", out)
	}
}
