module nobroadcast

go 1.22
